"""Inline suppression pragmas.

A finding is suppressed by a comment of the form::

    x = something_flagged()  # repro: lint-ignore[DET001] why this is fine

    # repro: lint-ignore[DET002] why the next line is fine
    for item in legacy_set_iteration():

    # repro: lint-ignore-file[IO001] this whole module prints on purpose

Rules are a comma-separated list of ids.  The free text after the
bracket is the **justification** and is mandatory: a pragma without one
does not suppress anything and is itself reported (rule ``LINT001``), so
every exception in the tree carries its reason next to the code.

A same-line pragma covers its own line; a pragma on a comment-only line
covers the next code line below it (the justification may run over
several comment lines);
``lint-ignore-file`` covers the whole file.  Pragmas are read from real
comment tokens (via :mod:`tokenize`), so a pragma-shaped string literal
never suppresses anything.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

PRAGMA_RULE = "LINT001"

#: Rule id for declared pragmas that suppress nothing (stale pragmas).
STALE_PRAGMA_RULE = "LINT002"

_PRAGMA_RE = re.compile(
    r"repro:\s*lint-ignore(?P<filelevel>-file)?"
    r"\[(?P<rules>[A-Za-z0-9_*,\s]+)\]"
    r"\s*(?P<reason>.*)$"
)


@dataclass(frozen=True)
class BadPragma:
    """A malformed pragma (currently: one with no justification)."""

    line: int
    col: int
    message: str


@dataclass
class DeclaredPragma:
    """One well-formed pragma as written in the file.

    ``target`` is the code line the pragma covers (its own line for a
    same-line pragma, the next code line for a comment-only pragma) or
    ``0`` for a file-level ``lint-ignore-file``.  Tracked so the engine
    can report pragmas that suppressed nothing (LINT002).
    """

    line: int
    col: int
    rules: Tuple[str, ...]
    target: int


@dataclass
class Suppressions:
    """The parsed pragmas of one file."""

    #: line number -> rule ids suppressed on that line ("*" = all).
    lines: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule ids suppressed for the whole file.
    file_rules: Set[str] = field(default_factory=set)
    #: malformed pragmas, reported as ``LINT001`` findings.
    bad: List[BadPragma] = field(default_factory=list)
    #: (line, rule) pairs that suppressed at least one finding.
    used: Set[Tuple[int, str]] = field(default_factory=set)
    #: every well-formed pragma, in source order (LINT002 input).
    declared: List[DeclaredPragma] = field(default_factory=list)

    @classmethod
    def from_source(cls, source: str) -> "Suppressions":
        """Extract pragmas from the comment tokens of ``source``."""
        suppressions = cls()
        comment_only: Set[int] = set()
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            return suppressions
        last_line = max((token.end[0] for token in tokens), default=0)
        code_lines: Set[int] = set()
        for token in tokens:
            if token.type in (
                tokenize.COMMENT,
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENDMARKER,
            ):
                continue
            for line in range(token.start[0], token.end[0] + 1):
                code_lines.add(line)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(token.string)
            if match is None:
                continue
            line = token.start[0]
            rules = {
                rule.strip()
                for rule in match.group("rules").split(",")
                if rule.strip()
            }
            reason = match.group("reason").strip()
            if not reason:
                suppressions.bad.append(
                    BadPragma(
                        line=line,
                        col=token.start[1] + 1,
                        message=(
                            "suppression pragma has no justification; write "
                            "'# repro: lint-ignore[RULE] <why this is fine>' "
                            "(an unjustified pragma suppresses nothing)"
                        ),
                    )
                )
                continue
            declared = DeclaredPragma(
                line=line,
                col=token.start[1] + 1,
                rules=tuple(sorted(rules)),
                target=line,
            )
            suppressions.declared.append(declared)
            if match.group("filelevel"):
                declared.target = 0
                suppressions.file_rules |= rules
                continue
            if line not in code_lines:
                comment_only.add(line)
            suppressions.lines.setdefault(line, set()).update(rules)
        # A pragma on a comment-only line covers the next *code* line (the
        # justification may continue over further comment lines).
        targets: Dict[int, int] = {}
        for line in comment_only:
            rules = suppressions.lines.get(line, set())
            target = line + 1
            while target not in code_lines and target <= last_line:
                target += 1
            targets[line] = target
            suppressions.lines.setdefault(target, set()).update(rules)
        for declared in suppressions.declared:
            if declared.target in targets:
                declared.target = targets[declared.target]
        return suppressions

    def suppressed(self, rule_id: str, line: int) -> bool:
        """Does a pragma cover a ``rule_id`` finding on ``line``?"""
        if rule_id in (PRAGMA_RULE, STALE_PRAGMA_RULE):
            return False  # the pragma rules cannot be pragma'd away
        if rule_id in self.file_rules or "*" in self.file_rules:
            self.used.add((0, rule_id))
            return True
        rules = self.lines.get(line)
        if rules and (rule_id in rules or "*" in rules):
            self.used.add((line, rule_id))
            return True
        return False

    def stale(self) -> List[Tuple[DeclaredPragma, Tuple[str, ...]]]:
        """Declared pragmas (or rule ids within them) that suppressed nothing.

        Must be called *after* a full lint pass has routed every raw
        finding through :meth:`suppressed` — that is what populates
        ``used``.  Returns ``(pragma, unused_rule_ids)`` pairs; a
        wildcard pragma is unused only when no finding at all hit its
        target.
        """
        out: List[Tuple[DeclaredPragma, Tuple[str, ...]]] = []
        hit_targets = {line for line, _ in self.used}
        for declared in self.declared:
            unused = tuple(
                rule
                for rule in declared.rules
                if (
                    declared.target not in hit_targets
                    if rule == "*"
                    else (declared.target, rule) not in self.used
                )
            )
            if unused:
                out.append((declared, unused))
        return out
