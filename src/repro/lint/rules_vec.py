"""Vectorized-backend discipline: VEC001.

The struct-of-arrays engine (``repro.sim.vec``) earns its speedup by
keeping per-element work out of Python: round phases operate on whole
numpy arrays.  A ``for`` loop that iterates a numpy array directly
un-does that — every element materialises as a numpy scalar object,
which is slower than iterating a plain list and silently reintroduces
the per-element interpreter cost the backend exists to remove.  The
blessed pattern is ``array.tolist()`` (one bulk conversion, then plain
``int``/``float`` elements).

VEC001 flags ``for`` statements and comprehensions in the configured
``vec_modules`` whose iterable is *syntactically* numpy-producing:

* a call/attribute/subscript chain rooted at ``np`` or ``numpy``
  (``np.flatnonzero(x)``, ``np.where(m)[0]``, ...);
* a local name assigned from such an expression, or a subscript of one
  (boolean-mask indexing yields another array);
* a wrapper builtin (``enumerate``/``zip``/``sorted``/``list``/...)
  over either of the above — those iterate the array element-wise too.

Chains ending in ``.tolist()`` are the sanctioned escape and never
flagged.  The analysis is deliberately local (per function body, no
cross-function dataflow): it is a tripwire for the common regression,
not a type checker.  Deliberate cold-path exceptions carry
``# repro: lint-ignore[VEC001] <why>``.
"""

from __future__ import annotations

import ast
from typing import List, Set, Union

from .config import LintConfig
from .engine import FileRule, Finding, ParsedFile

#: Module-level names treated as the numpy module.
_NUMPY_NAMES = ("np", "numpy")

#: Builtins that iterate their (first) argument element-wise.
_ITER_WRAPPERS = (
    "enumerate",
    "zip",
    "sorted",
    "reversed",
    "list",
    "tuple",
    "set",
    "frozenset",
    "iter",
    "map",
    "filter",
)

_LoopNode = Union[ast.For, ast.comprehension]


def _root_name(node: ast.expr) -> str:
    """The base ``Name`` of a call/attribute/subscript chain, if any."""
    while True:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            return ""


def _ends_in_tolist(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "tolist"
    )


class _FunctionScope(ast.NodeVisitor):
    """Collects local names bound to numpy-producing expressions.

    One pass over a function body (nested functions get their own
    scope).  Only simple ``name = <numpy expr>`` bindings are tracked —
    rebinding a name to a non-numpy value later does *not* clear it,
    which errs on the side of flagging (the pragma documents the rare
    deliberate case).
    """

    def __init__(self) -> None:
        self.numpy_names: Set[str] = set()

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_numpy(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.numpy_names.add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and self._is_numpy(node.value):
            if isinstance(node.target, ast.Name):
                self.numpy_names.add(node.target.id)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested scopes are analysed separately

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _is_numpy(self, node: ast.expr) -> bool:
        if _ends_in_tolist(node):
            return False
        root = _root_name(node)
        if root in _NUMPY_NAMES:
            return True
        # A subscript or attribute-free reference to a tracked local
        # (mask indexing an array yields another array).
        if isinstance(node, (ast.Name, ast.Subscript)):
            return root in self.numpy_names
        return False


class NumpyIterationRule(FileRule):
    """VEC001: no Python ``for`` over a numpy array in vec hot paths."""

    rule_id = "VEC001"
    default_scope = "vec_modules"

    def check(self, file: ParsedFile, config: LintConfig) -> List[Finding]:
        assert file.tree is not None
        findings: List[Finding] = []
        scopes = [
            node
            for node in ast.walk(file.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes:
            analysis = _FunctionScope()
            for stmt in scope.body:
                analysis.visit(stmt)
            for node in self._walk_scope(scope):
                loops: List[_LoopNode] = []
                if isinstance(node, ast.For):
                    loops.append(node)
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    loops.extend(node.generators)
                for loop in loops:
                    iterable = loop.iter
                    if self._iterates_numpy(iterable, analysis):
                        # ``ast.comprehension`` carries no location; anchor
                        # those findings at the iterable expression.
                        anchor = loop if isinstance(loop, ast.For) else iterable
                        line, col = anchor.lineno, anchor.col_offset
                        findings.append(
                            Finding(
                                rule=self.rule_id,
                                path=file.relpath,
                                line=line,
                                col=col + 1,
                                message=(
                                    "for-loop iterates a numpy array element-"
                                    "wise in a vectorized-engine module; "
                                    "convert with .tolist() first (bulk "
                                    "conversion beats per-element numpy "
                                    "scalars) or justify with "
                                    "'# repro: lint-ignore[VEC001] <why>'"
                                ),
                            )
                        )
        return findings

    def _walk_scope(self, scope: ast.AST):
        """Walk a function body without descending into nested functions."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _iterates_numpy(self, iterable: ast.expr, scope: _FunctionScope) -> bool:
        if _ends_in_tolist(iterable):
            return False
        # Wrapper builtins iterate their arguments element-wise.
        if (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in _ITER_WRAPPERS
        ):
            return any(self._iterates_numpy(arg, scope) for arg in iterable.args)
        return scope._is_numpy(iterable)
