"""SARIF 2.1.0 rendering of lint reports.

SARIF (Static Analysis Results Interchange Format) is the schema code
hosts ingest to annotate pull requests with findings.  This module maps
a :class:`~repro.lint.engine.LintReport` onto the minimal conforming
subset: one ``run``, the full rule catalogue in the tool's ``driver``,
and one ``result`` per finding with a physical location.

Output is deterministic — the catalogue is sorted by rule id, results
keep the report's (path, line, col, rule) order, and the JSON is dumped
with sorted keys — so two runs over the same tree are byte-identical,
same as the text and JSON formats.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .engine import SEVERITY_WARNING, LintReport

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

TOOL_NAME = "repro-lint"
TOOL_URI = "docs/LINT.md"

#: One-line descriptions for every rule the engine can emit, including
#: the engine-intrinsic ids that have no rule class.  Kept here (not on
#: the classes) so the catalogue renders without instantiating rules.
RULE_DESCRIPTIONS: Dict[str, str] = {
    "PARSE": "File does not parse as Python.",
    "LINT001": "Suppression pragma has no justification.",
    "LINT002": "Suppression pragma suppresses no finding (stale).",
    "DET001": "Ambient nondeterminism call in a deterministic package.",
    "DET002": "Hash-order set/dict iteration in a deterministic package.",
    "DET003": (
        "Deterministic code transitively reaches a nondeterminism "
        "source without passing through the seeded-RNG facade."
    ),
    "PAR001": "Task reference does not resolve to a picklable function.",
    "ACC001": "Metrics/merge/validator message-counter drift.",
    "PERF001": "Hot-path class without __slots__.",
    "IO001": "Bare print on a library path.",
    "EXC001": "Exception swallowed without handling or logging.",
    "VEC001": "Per-element Python loop over numpy arrays on a hot path.",
    "ASYNC001": "Blocking call inside an async def body.",
    "ASYNC002": "Coroutine called but never awaited, gathered, or stored.",
    "ASYNC003": "Threading primitive held across an await.",
}


def _level(severity: str) -> str:
    return "warning" if severity == SEVERITY_WARNING else "error"


def sarif_dict(report: LintReport) -> Dict[str, object]:
    """The report as a SARIF 2.1.0 ``log`` object (plain dicts)."""
    rules: List[Dict[str, object]] = [
        {
            "id": rule_id,
            "shortDescription": {"text": RULE_DESCRIPTIONS[rule_id]},
            "helpUri": TOOL_URI,
        }
        for rule_id in sorted(RULE_DESCRIPTIONS)
    ]
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    results: List[Dict[str, object]] = []
    for finding in report.findings:
        result: Dict[str, object] = {
            "ruleId": finding.rule,
            "level": _level(finding.severity),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": rules,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }


def render_sarif(report: LintReport) -> str:
    """The report as a SARIF 2.1.0 JSON string (deterministic)."""
    return json.dumps(sarif_dict(report), indent=2, sort_keys=True)
