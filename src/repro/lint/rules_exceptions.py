"""EXC001: supervision code must not swallow exceptions it cannot see.

The execution and supervision layers (:mod:`repro.exec`,
:mod:`repro.parallel`) exist to *account* for failure: every trial ends
as a journalled outcome, every pool incident as a supervisor counter.  A
``bare except:`` or ``except BaseException:`` handler in those modules
that neither re-raises nor journals what it caught silently eats the one
signal the whole resilience story depends on — including
``KeyboardInterrupt`` and the :class:`~repro.errors.CampaignInterrupted`
shutdown path, which such a handler would cancel.

``except Exception`` is deliberately allowed: that is the resilience
net's normal catch (it leaves ``BaseException`` — interrupts, exits —
flowing).  What EXC001 flags is the broader catch *without* an escape
hatch:

* a ``raise`` anywhere in the handler body (bare re-raise or a wrapped
  exception) satisfies the rule;
* so does a call whose dotted name mentions ``journal`` (the handler
  converted the exception into a durable record).

Scope defaults to the ``guarded_modules`` option of the rule's config
(``src/repro/exec`` and ``src/repro/parallel`` in this repo).  Genuinely
intentional swallows — there should be almost none — carry a
``# repro: lint-ignore[EXC001] why`` pragma.
"""

from __future__ import annotations

import ast
from typing import List

from .config import LintConfig
from .engine import FileRule, Finding, ParsedFile

#: Exception names whose handlers are as broad as a bare ``except:``.
_BROAD_NAMES = ("BaseException",)


def _broad_catch(handler: ast.ExceptHandler) -> bool:
    """True for ``except:`` and ``except BaseException`` (incl. tuples)."""
    node = handler.type
    if node is None:
        return True
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    for candidate in candidates:
        if isinstance(candidate, ast.Name) and candidate.id in _BROAD_NAMES:
            return True
        if (
            isinstance(candidate, ast.Attribute)
            and candidate.attr in _BROAD_NAMES
        ):
            return True
    return False


def _dotted_name(node: ast.AST) -> str:
    """Best-effort dotted name of a call target (``self.journal.append``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _handler_escapes(handler: ast.ExceptHandler) -> bool:
    """Does the handler re-raise or journal what it caught?"""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            if "journal" in _dotted_name(node.func).lower():
                return True
    return False


class SwallowedExceptionRule(FileRule):
    """EXC001 — broad catches in supervision code must escape somewhere."""

    rule_id = "EXC001"
    default_scope = "guarded_modules"

    def check(self, file: ParsedFile, config: LintConfig) -> List[Finding]:
        assert file.tree is not None
        findings: List[Finding] = []
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _broad_catch(node):
                continue
            if _handler_escapes(node):
                continue
            caught = "bare except:" if node.type is None else "except BaseException"
            findings.append(
                Finding(
                    rule=self.rule_id,
                    path=file.relpath,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    message=(
                        f"{caught} swallows the exception without "
                        "re-raising or journaling it; supervision code "
                        "must keep BaseException (interrupts, shutdown) "
                        "flowing or record what it caught "
                        "(docs/RESILIENCE.md)"
                    ),
                )
            )
        return findings
