"""Fault-tolerant trial execution for the experiment layer.

The paper's protocols tolerate crashing *nodes*; this subpackage makes
the harness tolerate crashing *trials*: per-trial wall-clock timeouts,
retry with derived seeds and capped exponential backoff, quarantine of
persistently failing configurations, and a JSONL checkpoint journal that
lets a killed sweep resume without re-running finished trials.

Entry points: :class:`ResilientExecutor` (one guarded trial),
:func:`repro.analysis.sweeps.resilient_sweep` (guarded grids), and the
``repro run --resume/--trial-timeout/--retries`` CLI flags.
"""

from .executor import (
    CACHED,
    FAILED,
    OK,
    QUARANTINED,
    RESUMED,
    TIMEOUT,
    Quarantine,
    ResilientExecutor,
    TrialOutcome,
    default_serialize,
)
from .journal import FsckReport, Journal, fsck_journal, open_journal, seal_record
from .retry import RetryPolicy
from .timeout import call_with_timeout, timeouts_supported

__all__ = [
    "CACHED",
    "FAILED",
    "FsckReport",
    "OK",
    "QUARANTINED",
    "RESUMED",
    "TIMEOUT",
    "Journal",
    "Quarantine",
    "ResilientExecutor",
    "RetryPolicy",
    "TrialOutcome",
    "call_with_timeout",
    "default_serialize",
    "fsck_journal",
    "open_journal",
    "seal_record",
    "timeouts_supported",
]
