"""Retry policy with derived seeds and capped exponential backoff.

A failing trial is retried with a *different but deterministic* seed:
attempt ``k`` of base seed ``s`` runs under ``derive_seed(s, "retry", k)``,
so a flaky failure gets fresh randomness while the whole retry ladder
stays reproducible from the master seed.  Between attempts the policy
sleeps ``backoff_base * backoff_factor**k`` seconds, capped at
``backoff_cap`` (the classic capped exponential schedule — pointless for
a local simulation's sake, essential once trials hit shared resources
like subprocess pools or remote backends).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, List

from ..errors import ConfigurationError
from ..rng import derive_seed


@dataclass(frozen=True)
class RetryPolicy:
    """How often, with what seeds, and with what pauses to retry."""

    #: Number of *re*-tries after the first attempt (0 = fail fast).
    retries: int = 0
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    #: Injection point for tests; defaults to :func:`time.sleep`.
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    @property
    def max_attempts(self) -> int:
        """Total attempts including the first one."""
        return self.retries + 1

    def delay(self, attempt: int) -> float:
        """Pause before retry ``attempt`` (1-based), capped exponential."""
        return min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )

    def delays(self) -> List[float]:
        """The full backoff ladder, one entry per retry."""
        return [self.delay(k) for k in range(1, self.retries + 1)]

    def attempt_seeds(self, seed: int) -> Iterator[int]:
        """Seeds for attempts ``0..retries``: the base seed, then derived.

        The first attempt uses ``seed`` unchanged so that a trial that
        never fails is bit-identical with and without a retry policy.
        """
        yield seed
        for attempt in range(1, self.max_attempts):
            yield derive_seed(seed, "retry", attempt)
