"""The resilient trial executor.

``ResilientExecutor.run_trial`` wraps one harness trial — an arbitrary
``task(seed=..., **kwargs)`` call — with every robustness layer this
package provides:

* a hard per-trial wall-clock budget (:mod:`repro.exec.timeout`);
* retry with derived seeds and capped exponential backoff
  (:mod:`repro.exec.retry`);
* a quarantine list: a config key that keeps failing is skipped for the
  rest of the campaign instead of burning its budget again and again;
* optional journaling of every outcome for ``--resume``
  (:mod:`repro.exec.journal`).

The executor never lets a trial exception escape: every trial yields a
:class:`TrialOutcome` with a status, and sweeps aggregate those into
partial results (:func:`repro.analysis.sweeps.resilient_sweep`) instead
of dying with the first bad configuration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..errors import TrialTimeout
from .journal import Journal
from .retry import RetryPolicy
from .timeout import call_with_timeout

#: Trial statuses.
OK = "ok"
FAILED = "failed"
TIMEOUT = "timeout"
QUARANTINED = "quarantined"
RESUMED = "resumed"
#: Served from a campaign result cache — same serialised value a fresh
#: execution would have produced, zero trial executions.
CACHED = "cached"

#: Default serialisation of a trial value into the journal: result objects
#: expose ``summary()`` (LeaderElectionResult, AgreementResult,
#: BaselineOutcome, Metrics...); JSON-native values pass through; anything
#: else degrades to ``repr``.
def default_serialize(value: Any) -> Any:
    if hasattr(value, "summary"):
        return value.summary()
    if isinstance(value, (bool, int, float, str, type(None))):
        return value
    if isinstance(value, (list, tuple)):
        return [default_serialize(v) for v in value]
    if isinstance(value, dict):
        return {str(k): default_serialize(v) for k, v in value.items()}
    return repr(value)


@dataclass
class TrialOutcome:
    """Everything observable about one executed (or skipped) trial."""

    key: str
    seed: int
    status: str
    attempts: int = 0
    value: Any = None
    error: Optional[str] = None
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in (OK, RESUMED, CACHED)

    def journal_record(
        self, serialize: Callable[[Any], Any] = default_serialize
    ) -> Dict[str, Any]:
        """JSON-safe form for the checkpoint journal."""
        return {
            "key": self.key,
            "seed": self.seed,
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "value": serialize(self.value) if self.ok else None,
        }


class Quarantine:
    """Config keys that failed persistently and are no longer attempted."""

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self._failures: Dict[str, int] = {}

    def record_failure(self, key: str) -> None:
        """Count one exhausted-retries failure against ``key``."""
        self._failures[key] = self._failures.get(key, 0) + 1

    def record_success(self, key: str) -> None:
        """A success clears the key's strike count."""
        self._failures.pop(key, None)

    def blocks(self, key: str) -> bool:
        """True when ``key`` has reached the quarantine threshold."""
        return self._failures.get(key, 0) >= self.threshold

    def keys(self) -> Dict[str, int]:
        """Current strike counts (diagnostics)."""
        return dict(self._failures)


class ResilientExecutor:
    """Runs trials with timeouts, retries, quarantine, and journaling."""

    def __init__(
        self,
        timeout_seconds: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        quarantine: Optional[Quarantine] = None,
        journal: Optional[Journal] = None,
        serialize: Callable[[Any], Any] = default_serialize,
    ) -> None:
        self.timeout_seconds = timeout_seconds
        self.retry = retry or RetryPolicy()
        self.quarantine = quarantine or Quarantine()
        self.journal = journal
        self.serialize = serialize
        #: key -> journalled record, loaded by :meth:`load_completed`.
        self.completed: Dict[str, Dict[str, Any]] = {}
        #: Stats of the last supervised parallel run (see
        #: :mod:`repro.parallel.supervisor`); ``None`` until one happened.
        self.last_supervisor_stats: Optional[Any] = None

    # -- resume ----------------------------------------------------------

    def write_manifest(self, manifest: Any) -> None:
        """Embed a provenance manifest record in the journal (if any).

        ``manifest`` is a :class:`repro.obs.Manifest`; a journal-less
        executor ignores the call, so drivers never need to guard it.
        """
        if self.journal is not None:
            self.journal.append(manifest.journal_record())

    def load_completed(self) -> int:
        """Read the journal and index successful records by key.

        Returns the number of resumable trials.  Failed/timeout records
        are *not* indexed — a resumed sweep retries them.  Embedded
        manifest records carry no ``key``/``status`` and are skipped
        naturally.
        """
        self.completed = {}
        if self.journal is None:
            return 0
        for record in self.journal.iter_records():
            if record.get("status") in (OK, RESUMED) and "key" in record:
                self.completed[str(record["key"])] = record
        return len(self.completed)

    # -- execution -------------------------------------------------------

    def run_trial(
        self,
        task: Callable[..., Any],
        key: str,
        seed: int,
        **kwargs: Any,
    ) -> TrialOutcome:
        """Execute ``task(seed=..., **kwargs)`` under the full safety net."""
        record = self.completed.get(key)
        if record is not None:
            # Finished in a previous (killed) run: hand back the journalled
            # value without re-executing anything.
            return TrialOutcome(
                key=key,
                seed=int(record.get("seed", seed)),
                status=RESUMED,
                attempts=int(record.get("attempts", 1)),
                value=record.get("value"),
            )
        if self.quarantine.blocks(key):
            outcome = TrialOutcome(
                key=key, seed=seed, status=QUARANTINED, attempts=0,
                error="config quarantined after repeated failures",
            )
            self._journal(outcome)
            return outcome

        started = time.monotonic()
        last_error: Optional[BaseException] = None
        timed_out = False
        attempts = 0
        for attempt, attempt_seed in enumerate(self.retry.attempt_seeds(seed)):
            if attempt > 0:
                self.retry.sleep(self.retry.delay(attempt))
            attempts = attempt + 1
            try:
                value = call_with_timeout(
                    task, self.timeout_seconds, seed=attempt_seed, **kwargs
                )
            except TrialTimeout as exc:
                last_error, timed_out = exc, True
            except Exception as exc:  # noqa: BLE001 - the whole point
                last_error, timed_out = exc, False
            else:
                self.quarantine.record_success(key)
                outcome = TrialOutcome(
                    key=key,
                    seed=attempt_seed,
                    status=OK,
                    attempts=attempts,
                    value=value,
                    elapsed_seconds=time.monotonic() - started,
                )
                self._journal(outcome)
                return outcome

        self.quarantine.record_failure(key)
        outcome = TrialOutcome(
            key=key,
            seed=seed,
            status=TIMEOUT if timed_out else FAILED,
            attempts=attempts,
            error=f"{type(last_error).__name__}: {last_error}",
            elapsed_seconds=time.monotonic() - started,
        )
        self._journal(outcome)
        return outcome

    def _journal(self, outcome: TrialOutcome) -> None:
        if self.journal is not None:
            self.journal.append(outcome.journal_record(self.serialize))
