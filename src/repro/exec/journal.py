"""Append-only JSONL checkpoint journal.

One JSON object per line, flushed (and fsynced when possible) after every
append, so a killed sweep loses at most the record being written.  The
loader is deliberately forgiving: a truncated or garbled trailing line —
the signature of a process killed mid-write — is skipped instead of
poisoning the resume, and counted in :attr:`Journal.corrupt_lines`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union


class Journal:
    """A durable JSONL log keyed by caller-chosen record dicts."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.corrupt_lines = 0

    def append(self, record: Dict[str, Any]) -> None:
        """Write one record as a JSON line and push it to disk."""
        line = json.dumps(record, sort_keys=True, default=str)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # A run killed mid-append leaves a torn line without a newline;
        # terminate it first so the new record is not glued onto it (the
        # torn fragment stays corrupt, the new record stays parseable).
        if self.path.exists():
            with open(self.path, "rb") as existing:
                try:
                    existing.seek(-1, os.SEEK_END)
                    torn = existing.read(1) != b"\n"
                except OSError:  # empty file
                    torn = False
            if torn:
                line = "\n" + line
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            try:
                os.fsync(handle.fileno())
            except OSError:  # pragma: no cover - exotic filesystems
                pass

    def load(self) -> List[Dict[str, Any]]:
        """All intact records, skipping corrupt/half-written lines."""
        return list(self.iter_records())

    def iter_records(self) -> Iterator[Dict[str, Any]]:
        """Yield intact records in write order."""
        self.corrupt_lines = 0
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # Half-written tail of a killed run (or stray garbage):
                    # resume from what is intact rather than failing.
                    self.corrupt_lines += 1
                    continue
                if isinstance(record, dict):
                    yield record
                else:
                    self.corrupt_lines += 1

    def last_manifest(self) -> Optional[Dict[str, Any]]:
        """The most recent embedded provenance-manifest record, if any.

        Campaign drivers append a ``{"kind": "manifest", ...}`` record per
        invocation (see :mod:`repro.obs.provenance`); the latest one
        describes the run that wrote most recently.
        """
        from ..obs.provenance import is_manifest_record

        found: Optional[Dict[str, Any]] = None
        for record in self.iter_records():
            if is_manifest_record(record):
                found = record
        return found

    def exists(self) -> bool:
        """Whether the journal file is present on disk."""
        return self.path.exists()

    def clear(self) -> None:
        """Delete the journal file (fresh, non-resumed runs)."""
        if self.path.exists():
            self.path.unlink()


def open_journal(
    path: Optional[Union[str, Path]], resume: bool
) -> Optional[Journal]:
    """Standard harness journal handling: ``None`` path means no journal.

    A fresh (non-resume) run truncates any stale journal at the path so
    leftover records from an earlier sweep cannot masquerade as progress.
    """
    if path is None:
        return None
    journal = Journal(path)
    if not resume:
        journal.clear()
    return journal
