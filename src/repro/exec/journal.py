"""Append-only JSONL checkpoint journal (v2: CRC-sealed, sequenced).

One JSON object per line, flushed (and fsynced when possible) after every
append, so a killed sweep loses at most the record being written.  Since
v2 every appended record is sealed with an envelope:

* ``_crc`` — CRC32 (hex) of the record's canonical JSON, so a fully
  terminated line whose *bytes* were corrupted (bit rot, torn block
  rewrite) is detected instead of trusted;
* ``_seq`` — a monotonic per-journal sequence number, so fsck can report
  lost or duplicated records, not just unparseable ones.

The loader is deliberately forgiving: corrupt lines — unparseable JSON,
non-object lines, or CRC mismatches — are skipped instead of poisoning a
resume, and counted in :attr:`Journal.corrupt_lines`.  v1 records (no
``_crc``) still load and are counted in
:attr:`Journal.unverified_records`.

Durability of the writer itself:

* appends are O(1): the torn-tail check runs once when the write handle
  is opened (healing any half-written tail into the ``.corrupt``
  sidecar), after which a single handle is kept open with tracked tail
  state; the file is re-verified only when the path is replaced or
  modified underneath us;
* a failing write (``ENOSPC``, permissions yanked, filesystem gone)
  degrades the journal to in-memory mode with one loud stderr warning
  instead of crashing the campaign mid-flight — the run completes, it is
  merely no longer resumable.

``fsck_journal`` audits a journal file (and ``--repair`` rewrites it,
quarantining corrupt lines into the ``.corrupt`` sidecar); the CLI
surface is ``repro journal fsck``.
"""

from __future__ import annotations

import json
import os
import sys
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

#: Envelope keys added by :meth:`Journal.append` (stripped on load).
CRC_KEY = "_crc"
SEQ_KEY = "_seq"

#: Suffix of the quarantine sidecar holding corrupt line fragments.
CORRUPT_SUFFIX = ".corrupt"


def record_crc(record: Dict[str, Any]) -> str:
    """CRC32 of the record's canonical JSON (envelope keys excluded)."""
    payload = {k: v for k, v in record.items() if k not in (CRC_KEY, SEQ_KEY)}
    body = json.dumps(payload, sort_keys=True, default=str)
    return format(zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF, "08x")


def seal_record(record: Dict[str, Any], seq: int) -> Dict[str, Any]:
    """Seal a record with the v2 envelope (``_crc`` + ``_seq``).

    This is the journal's wire format, reused verbatim by the campaign
    service's streamed results (:mod:`repro.serve`): a sealed record is
    one self-verifying JSON line wherever it travels.
    """
    sealed = dict(record)
    sealed[CRC_KEY] = record_crc(record)
    sealed[SEQ_KEY] = seq
    return sealed


def _classify_line(line: str) -> Tuple[str, Optional[Dict[str, Any]]]:
    """One journal line → (``ok``/``unverified``/``corrupt``, record).

    ``ok`` records carried a matching CRC, ``unverified`` ones predate
    the envelope (v1), ``corrupt`` covers unparseable JSON, non-object
    lines, and CRC mismatches.  The returned record has the envelope
    keys stripped.
    """
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return "corrupt", None
    if not isinstance(record, dict):
        return "corrupt", None
    if CRC_KEY not in record:
        return "unverified", record
    expected = record.get(CRC_KEY)
    if record_crc(record) != expected:
        return "corrupt", None
    record = dict(record)
    record.pop(CRC_KEY, None)
    record.pop(SEQ_KEY, None)
    return "ok", record


class Journal:
    """A durable JSONL log keyed by caller-chosen record dicts."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.corrupt_lines = 0
        self.unverified_records = 0
        self.verified_records = 0
        #: True once a write failed and the journal fell back to memory.
        self.degraded = False
        self.degraded_reason: Optional[str] = None
        self._handle: Optional[Any] = None
        #: (st_dev, st_ino, size) of the file behind the open handle —
        #: if the on-disk path stops matching, it was replaced or written
        #: behind our back and the tail must be re-verified.
        self._tail_state: Optional[Tuple[int, int, int]] = None
        self._next_seq = 0
        #: Records accepted after degradation (same-process reads only).
        self._memory: List[Dict[str, Any]] = []

    @property
    def corrupt_path(self) -> Path:
        """The quarantine sidecar for corrupt line fragments."""
        return self.path.with_name(self.path.name + CORRUPT_SUFFIX)

    # -- writing ---------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> None:
        """Seal ``record`` (CRC + sequence number) and push it to disk.

        Never raises for I/O failures: the first failed write switches
        the journal to in-memory mode (see :attr:`degraded`) with a loud
        stderr warning, so a full disk cannot kill a campaign that was
        otherwise healthy.
        """
        if self.degraded:
            self._memory.append(dict(record))
            return
        try:
            self._ensure_handle()
            sealed = seal_record(record, self._next_seq)
            line = json.dumps(sealed, sort_keys=True, default=str) + "\n"
            assert self._handle is not None
            self._handle.write(line.encode("utf-8"))
            self._handle.flush()
            try:
                os.fsync(self._handle.fileno())
            except OSError:  # pragma: no cover - exotic filesystems
                pass
            self._next_seq += 1
            self._track_tail()
        except OSError as exc:
            self._degrade(record, exc)

    def _ensure_handle(self) -> None:
        """Open (or re-validate) the append handle, healing a torn tail.

        The expensive part — reading the existing file to find the next
        sequence number and any half-written tail — runs once per opened
        handle; afterwards each append only compares ``os.stat`` against
        the tracked tail state, re-opening only when the path was
        replaced or modified underneath us.
        """
        if self._handle is not None:
            try:
                st = os.stat(self.path)
                if (st.st_dev, st.st_ino, st.st_size) == self._tail_state:
                    return
            except OSError:
                pass  # file vanished: fall through and recreate it
            self._close_handle()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._heal_tail()
        self._handle = open(self.path, "ab")
        self._track_tail()

    def _heal_tail(self) -> None:
        """Move a half-written trailing fragment to the corrupt sidecar.

        A run killed mid-append leaves a final line without a newline;
        quarantining it keeps the journal all-terminated-lines so new
        records are never glued onto torn bytes.  Also recovers the next
        sequence number from the intact records.
        """
        if not self.path.exists():
            self._next_seq = 0
            return
        data = self.path.read_bytes()
        newline = data.rfind(b"\n")
        if data and newline != len(data) - 1:
            fragment = data[newline + 1 :]
            with open(self.corrupt_path, "ab") as sidecar:
                sidecar.write(fragment + b"\n")
            with open(self.path, "r+b") as handle:
                handle.truncate(newline + 1)
            data = data[: newline + 1]
        next_seq = 0
        for raw in data.splitlines():
            try:
                record = json.loads(raw.decode("utf-8", errors="replace"))
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and isinstance(record.get(SEQ_KEY), int):
                next_seq = max(next_seq, record[SEQ_KEY] + 1)
        self._next_seq = next_seq

    def _track_tail(self) -> None:
        assert self._handle is not None
        st = os.fstat(self._handle.fileno())
        self._tail_state = (st.st_dev, st.st_ino, st.st_size)

    def _close_handle(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - close-on-full-disk
                pass
            self._handle = None
            self._tail_state = None

    def _degrade(self, record: Dict[str, Any], exc: OSError) -> None:
        """Switch to journal-less in-memory mode after a failed write."""
        self.degraded = True
        self.degraded_reason = f"{type(exc).__name__}: {exc}"
        self._close_handle()
        self._memory.append(dict(record))
        print(
            f"[repro journal] WARNING: cannot write {self.path}"
            f" ({self.degraded_reason}); journaling degraded to in-memory"
            " mode — the campaign will finish but is NOT resumable from"
            " this point",
            file=sys.stderr,
        )

    # -- reading ---------------------------------------------------------

    def load(self) -> List[Dict[str, Any]]:
        """All intact records, skipping corrupt/half-written lines."""
        return list(self.iter_records())

    def _raw_lines(self) -> List[bytes]:
        """The journal file's raw lines (empty when absent/unreadable)."""
        if not self.path.exists():
            return []
        try:
            return self.path.read_bytes().splitlines()
        except OSError:
            return []

    def iter_records(self) -> Iterator[Dict[str, Any]]:
        """Yield intact records in write order (envelope keys stripped).

        :attr:`corrupt_lines`, :attr:`unverified_records`, and
        :attr:`verified_records` are refreshed as one atomic snapshot
        *after* the iteration completes — a partially consumed (or
        concurrent) iteration never leaves another layer reading
        half-reset counters.  After degradation the in-memory records are
        yielded after whatever is still readable on disk, so a
        same-process report sees the whole campaign.
        """
        corrupt = unverified = verified = 0
        for raw in self._raw_lines():
            # Binary garbage must not kill the load: decode lossily,
            # the CRC/JSON checks below reject what isn't a record.
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            status, record = _classify_line(line)
            if status == "corrupt":
                corrupt += 1
            elif status == "unverified":
                unverified += 1
                yield record  # type: ignore[misc]
            else:
                verified += 1
                yield record  # type: ignore[misc]
        for record in self._memory:
            yield dict(record)
        self.corrupt_lines = corrupt
        self.unverified_records = unverified
        self.verified_records = verified

    def last_manifest(self) -> Optional[Dict[str, Any]]:
        """The most recent embedded provenance-manifest record, if any.

        Campaign drivers append a ``{"kind": "manifest", ...}`` record per
        invocation (see :mod:`repro.obs.provenance`); the latest one
        describes the run that wrote most recently.

        Scans the journal from its *tail* and stops at the first manifest
        found, so a mid-campaign call costs one reverse pass over the
        (usually short) suffix instead of re-CRCing the whole file — and
        it never touches the corrupt/unverified/verified counters.
        """
        from ..obs.provenance import is_manifest_record

        for memory_record in reversed(self._memory):
            if is_manifest_record(memory_record):
                return dict(memory_record)
        for raw in reversed(self._raw_lines()):
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            status, record = _classify_line(line)
            if status != "corrupt" and is_manifest_record(record):  # type: ignore[arg-type]
                return record
        return None

    def exists(self) -> bool:
        """Whether the journal file is present on disk."""
        return self.path.exists()

    def clear(self) -> None:
        """Delete the journal file *and* its quarantine sidecar.

        A fresh (non-resumed) run must not inherit anything from the
        previous campaign at this path: the ``.corrupt`` sidecar from an
        earlier run would otherwise pollute fsck output and reports of
        the new one.  Degradation state is reset too — a fresh campaign
        gets a fresh shot at the disk (and degrades again, loudly, if the
        filesystem is still broken).
        """
        self._close_handle()
        for artifact in (self.path, self.corrupt_path):
            try:
                artifact.unlink()
            except FileNotFoundError:
                pass
            except OSError:
                # A path that cannot be unlinked (e.g. the degraded
                # "journal is a directory" case) still gets its
                # in-memory state reset below.
                pass
        self._next_seq = 0
        self._memory = []
        self.degraded = False
        self.degraded_reason = None
        self.corrupt_lines = 0
        self.unverified_records = 0
        self.verified_records = 0

    def close(self) -> None:
        """Release the append handle (appends re-open on demand)."""
        self._close_handle()


# ----------------------------------------------------------------------
# fsck
# ----------------------------------------------------------------------


@dataclass
class FsckReport:
    """Everything ``repro journal fsck`` learned about one journal."""

    path: str
    total_lines: int = 0
    verified: int = 0
    unverified: int = 0
    corrupt: int = 0
    torn_tail: bool = False
    seq_duplicates: int = 0
    seq_missing: int = 0
    repaired: bool = False
    quarantined: int = 0
    #: 1-based line numbers of the corrupt lines (diagnostics).
    corrupt_line_numbers: List[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No corruption, no torn tail, no sequence anomalies."""
        return not (
            self.corrupt or self.torn_tail or self.seq_duplicates or self.seq_missing
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "clean": self.clean,
            "total_lines": self.total_lines,
            "verified": self.verified,
            "unverified": self.unverified,
            "corrupt": self.corrupt,
            "torn_tail": self.torn_tail,
            "seq_duplicates": self.seq_duplicates,
            "seq_missing": self.seq_missing,
            "repaired": self.repaired,
            "quarantined": self.quarantined,
            "corrupt_line_numbers": list(self.corrupt_line_numbers),
        }

    def render(self) -> str:
        lines = [
            f"journal fsck: {self.path}",
            f"  lines:              {self.total_lines}",
            f"  verified (v2):      {self.verified}",
            f"  unverified (v1):    {self.unverified}",
            f"  corrupt:            {self.corrupt}"
            + (
                f" (lines {', '.join(map(str, self.corrupt_line_numbers))})"
                if self.corrupt_line_numbers
                else ""
            ),
            f"  torn tail:          {'yes' if self.torn_tail else 'no'}",
            f"  sequence duplicates: {self.seq_duplicates}",
            f"  sequence gaps:      {self.seq_missing} record(s) missing",
        ]
        if self.repaired:
            lines.append(
                f"  repaired: {self.quarantined} corrupt line(s) moved to"
                f" {self.path}{CORRUPT_SUFFIX}"
            )
        if self.repaired:
            verdict = "repaired (journal rewritten clean)"
        elif self.clean:
            verdict = "clean"
        else:
            verdict = "NEEDS ATTENTION"
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)


def fsck_journal(path: Union[str, Path], repair: bool = False) -> FsckReport:
    """Audit (and optionally repair) a journal file.

    Reports verified/unverified/corrupt line counts, a torn tail, and
    sequence-number anomalies (duplicates, gaps — the signature of lost
    records).  With ``repair=True`` the journal is rewritten atomically
    with only its intact lines, and every corrupt line (including a torn
    tail) is appended to the ``.corrupt`` quarantine sidecar.

    Raises ``FileNotFoundError`` when the journal does not exist.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no journal at {path}")
    report = FsckReport(path=str(path))
    data = path.read_bytes()
    report.torn_tail = bool(data) and not data.endswith(b"\n")

    kept: List[bytes] = []
    quarantine: List[bytes] = []
    seqs: List[int] = []
    raw_lines = data.split(b"\n")
    if raw_lines and raw_lines[-1] == b"":
        raw_lines.pop()
    for number, raw in enumerate(raw_lines, start=1):
        text = raw.decode("utf-8", errors="replace").strip()
        if not text:
            continue
        report.total_lines += 1
        status, record = _classify_line(text)
        if status == "corrupt":
            report.corrupt += 1
            report.corrupt_line_numbers.append(number)
            quarantine.append(raw)
            continue
        kept.append(raw)
        if status == "unverified":
            report.unverified += 1
        else:
            report.verified += 1
            try:
                seqs.append(int(json.loads(text)[SEQ_KEY]))
            except (ValueError, KeyError, TypeError):  # pragma: no cover
                pass

    if seqs:
        unique = set(seqs)
        report.seq_duplicates = len(seqs) - len(unique)
        span = max(unique) - min(unique) + 1
        report.seq_missing = span - len(unique)

    if repair and (report.corrupt or report.torn_tail):
        sidecar = path.with_name(path.name + CORRUPT_SUFFIX)
        with open(sidecar, "ab") as handle:
            for raw in quarantine:
                handle.write(raw + b"\n")
        tmp = path.with_name(path.name + ".fsck-tmp")
        with open(tmp, "wb") as handle:
            for raw in kept:
                handle.write(raw + b"\n")
            handle.flush()
            try:
                os.fsync(handle.fileno())
            except OSError:  # pragma: no cover - exotic filesystems
                pass
        os.replace(tmp, path)
        report.repaired = True
        report.quarantined = len(quarantine)
    return report


def open_journal(
    path: Optional[Union[str, Path]], resume: bool
) -> Optional[Journal]:
    """Standard harness journal handling: ``None`` path means no journal.

    A fresh (non-resume) run truncates any stale journal at the path so
    leftover records from an earlier sweep cannot masquerade as progress.
    """
    if path is None:
        return None
    journal = Journal(path)
    if not resume:
        journal.clear()
    return journal
