"""Per-trial wall-clock budgets.

``call_with_timeout`` runs a callable under a hard deadline.  On the main
thread it uses the POSIX interval timer (``SIGALRM``): when the deadline
fires mid-call a :class:`~repro.errors.TrialTimeout` is raised *inside*
the call, which unwinds it cleanly — no threads to orphan, no state to
pickle, and the interrupted simulation is simply garbage.

Signals only reach the main thread, so off the main thread (the wire
driver's coordinator, the serve drainer) or on a platform without
``setitimer`` the call falls back to a portable thread-based deadline: the
callable runs in a daemon worker thread and the caller joins it with a
timeout.  On expiry the *caller* gets the same :class:`TrialTimeout`; the
worker thread is abandoned (Python cannot kill a thread), which is
acceptable for the pure-compute trials this guards — the abandoned thread
holds no locks the caller needs and exits with the process.  The SIGALRM
path is preferred exactly because it has no such zombie.
"""

from __future__ import annotations

import signal
import threading
from typing import Any, Callable, List, Optional, TypeVar

from ..errors import TrialTimeout

T = TypeVar("T")


def _signal_timeouts_usable() -> bool:
    """True when the zero-thread SIGALRM path can be used right now."""
    return (
        hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )


def timeouts_supported() -> bool:
    """True when hard deadlines can be enforced here and now.

    Always true since the thread-based fallback: off the main thread the
    deadline is enforced by joining a worker thread instead of SIGALRM.
    Kept as a function for API compatibility (executors record which
    mechanism a run used via :func:`_signal_timeouts_usable`).
    """
    return True


def _call_with_signal_deadline(
    fn: Callable[..., T],
    timeout_seconds: float,
    args: Any,
    kwargs: Any,
) -> T:
    """Main-thread path: SIGALRM raises TrialTimeout inside the call."""

    def _expired(signum: int, frame: Any) -> None:
        raise TrialTimeout(
            f"trial exceeded its {timeout_seconds}s wall-clock budget"
        )

    previous_handler = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, timeout_seconds)
    try:
        return fn(*args, **kwargs)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous_handler)


def _call_with_thread_deadline(
    fn: Callable[..., T],
    timeout_seconds: float,
    args: Any,
    kwargs: Any,
) -> T:
    """Portable path: run ``fn`` in a daemon worker, join with a timeout.

    The worker re-raises nothing itself; it parks the outcome and the
    caller re-raises or returns it, so exceptions propagate with their
    original traceback chained.
    """
    outcome: List[Any] = []
    failure: List[BaseException] = []

    def _run() -> None:
        try:
            outcome.append(fn(*args, **kwargs))
        # repro: lint-ignore[EXC001] parked for the joining caller, which re-raises it
        except BaseException as exc:
            failure.append(exc)

    worker = threading.Thread(
        target=_run, name="repro-trial-deadline", daemon=True
    )
    worker.start()
    worker.join(timeout_seconds)
    if worker.is_alive():
        raise TrialTimeout(
            f"trial exceeded its {timeout_seconds}s wall-clock budget "
            "(worker thread abandoned)"
        )
    if failure:
        raise failure[0]
    return outcome[0]


def call_with_timeout(
    fn: Callable[..., T],
    timeout_seconds: Optional[float],
    *args: Any,
    **kwargs: Any,
) -> T:
    """Run ``fn(*args, **kwargs)``, raising :class:`TrialTimeout` on expiry.

    ``timeout_seconds`` of ``None`` or ``0`` disables the deadline.  On
    the main thread the deadline is a SIGALRM interval timer (byte-
    identical to the historical behaviour); elsewhere it is a joined
    daemon worker thread (see module docstring for the trade-off).
    """
    if not timeout_seconds:
        return fn(*args, **kwargs)
    if _signal_timeouts_usable():
        return _call_with_signal_deadline(fn, timeout_seconds, args, kwargs)
    return _call_with_thread_deadline(fn, timeout_seconds, args, kwargs)
