"""Per-trial wall-clock budgets.

``call_with_timeout`` runs a callable under a hard deadline using the
POSIX interval timer (``SIGALRM``): when the deadline fires mid-call a
:class:`~repro.errors.TrialTimeout` is raised *inside* the call, which
unwinds it cleanly — no threads to orphan, no state to pickle, and the
interrupted simulation is simply garbage.

Signals only reach the main thread, so when invoked from a worker thread
(or on a platform without ``setitimer``) the call degrades gracefully to
running without a deadline — the executor records this and the retry
machinery still applies.
"""

from __future__ import annotations

import signal
import threading
from typing import Any, Callable, Optional, TypeVar

from ..errors import TrialTimeout

T = TypeVar("T")


def timeouts_supported() -> bool:
    """True when hard deadlines can be enforced here and now."""
    return (
        hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )


def call_with_timeout(
    fn: Callable[..., T],
    timeout_seconds: Optional[float],
    *args: Any,
    **kwargs: Any,
) -> T:
    """Run ``fn(*args, **kwargs)``, raising :class:`TrialTimeout` on expiry.

    ``timeout_seconds`` of ``None`` or ``0`` disables the deadline.  When
    deadlines are unsupported in the calling context the function simply
    runs uncapped (graceful degradation; see :func:`timeouts_supported`).
    """
    if not timeout_seconds or not timeouts_supported():
        return fn(*args, **kwargs)

    def _expired(signum: int, frame: Any) -> None:
        raise TrialTimeout(
            f"trial exceeded its {timeout_seconds}s wall-clock budget"
        )

    previous_handler = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, timeout_seconds)
    try:
        return fn(*args, **kwargs)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous_handler)
