#!/usr/bin/env python
"""Scaling study: measure the Theta(sqrt(n) polylog) message complexity.

Sweeps the network size, measures both protocols' message counts, fits the
growth exponents, and compares against the Theorem 4.1 / 5.1 bounds and
the naive quadratic flooding baseline.  This is the headline claim of the
paper made visible: message complexity *sublinear in n* while tolerating
n/2 crash faults.

Usage::

    python examples/scaling_study.py [max_n]
"""

import sys

from repro import agree, elect_leader
from repro.analysis.complexity import fit_power_law
from repro.analysis.stats import mean
from repro.analysis.tables import format_table
from repro.lowerbound.bounds import agreement_upper_bound, le_upper_bound
from repro.rng import seed_sequence

ALPHA = 0.5
TRIALS = 3


def main() -> None:
    max_n = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    sizes = [n for n in (128, 256, 512, 1024, 2048, 4096) if n <= max_n]

    rows = []
    le_points, ag_points = [], []
    for n in sizes:
        le_messages = mean(
            [
                elect_leader(n=n, alpha=ALPHA, seed=seed, adversary="random").messages
                for seed in seed_sequence(3, TRIALS)
            ]
        )
        ag_messages = mean(
            [
                agree(
                    n=n, alpha=ALPHA, inputs="mixed", seed=seed, adversary="random"
                ).messages
                for seed in seed_sequence(4, TRIALS)
            ]
        )
        le_points.append(le_messages)
        ag_points.append(ag_messages)
        rows.append(
            {
                "n": n,
                "LE messages": round(le_messages),
                "LE/bound": le_messages / le_upper_bound(n, ALPHA),
                "AG messages": round(ag_messages),
                "AG/bound": ag_messages / agreement_upper_bound(n, ALPHA),
                "flooding (n^2)": n * (n - 1),
            }
        )

    print(format_table(rows, title=f"message scaling at alpha={ALPHA}"))
    xs = [float(n) for n in sizes]
    le_fit = fit_power_law(xs, le_points)
    ag_fit = fit_power_law(xs, ag_points)
    print(
        f"\nfitted growth: leader election ~ n^{le_fit.exponent:.2f}, "
        f"agreement ~ n^{ag_fit.exponent:.2f} "
        f"(sqrt + polylog drift; flooding is n^2.00)"
    )
    print(
        "the 'X/bound' columns staying flat is Theorem 4.1/5.1's shape: "
        "measured = Theta(bound)."
    )


if __name__ == "__main__":
    main()
