#!/usr/bin/env python
"""Permissionless-network scenario: survive n - polylog(n) faulty nodes.

The paper's introduction motivates the extreme-resilience regime of
permissionless systems: participants join anonymously and the protocol
must work even when almost everyone is faulty.  This example pushes the
fault budget to the paper's ceiling — only ``~log^2 n`` honest nodes — and
elects a leader plus agrees on a bit anyway.

Usage::

    python examples/permissionless_committee.py [n]
"""

import math
import sys

from repro import agree, elect_leader
from repro.analysis.tables import format_table
from repro.params import Params, alpha_floor


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1024

    # The smallest alpha the model admits: log^2(n)/n (paper, Section II).
    alpha = min(1.0, alpha_floor(n) * 1.01)
    params = Params(n=n, alpha=alpha)
    honest = n - params.max_faulty

    print(f"permissionless network: n={n}, alpha={alpha:.4f}")
    print(
        f"faulty budget: {params.max_faulty} of {n} nodes "
        f"({params.max_faulty / n:.1%}) — only ~{honest} honest nodes "
        f"(log^2 n = {math.log(n) ** 2:.0f})"
    )
    print(
        f"committee: ~{params.expected_candidates:.0f} expected candidates, "
        f"{params.referee_count} referees each\n"
    )

    rows = []
    election = elect_leader(n=n, alpha=alpha, seed=7, adversary="random")
    rows.append({"problem": "leader election", **election.summary()})
    agreement = agree(n=n, alpha=alpha, inputs="single0", seed=7, adversary="random")
    rows.append({"problem": "agreement", **agreement.summary()})

    print(
        format_table(
            rows,
            columns=["problem", "success", "messages", "rounds", "crashes"],
            title=f"outcomes with {params.max_faulty}/{n} faulty nodes",
        )
    )
    print(
        f"\nleader elected: node {election.leader_node} "
        f"(faulty: {election.leader_is_faulty}) — with this few honest nodes "
        f"the leader is honest only w.p. ~alpha, exactly as Theorem 4.1 states."
    )


if __name__ == "__main__":
    main()
