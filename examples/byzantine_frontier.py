#!/usr/bin/env python
"""Byzantine frontier: where the crash-fault guarantees end.

The paper's protocols tolerate up to n - log^2(n) *crash* faults.  Its
conclusion asks (open problem 3) whether sublinear-message agreement can
survive *Byzantine* faults.  This example shows the cliff: the same
protocols that shrug off half the network crashing collapse against a
single actively lying node.

Usage::

    python examples/byzantine_frontier.py [n] [trials]
"""

import sys

from repro import agree, elect_leader
from repro.analysis.stats import summarize_trials
from repro.analysis.tables import format_table
from repro.extensions import run_byzantine_agreement, run_byzantine_election
from repro.rng import seed_sequence

ALPHA = 0.5


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    trials = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    rows = []

    # Crash faults: half the network may die — business as usual.
    crash_ok = summarize_trials(
        [
            agree(n=n, alpha=ALPHA, inputs="all1", seed=seed, adversary="random").success
            for seed in seed_sequence(1, trials)
        ]
    )
    rows.append(
        {
            "scenario": f"{n // 2} crash-faulty nodes (paper model)",
            "guarantee": "agreement + validity",
            "survives": crash_ok.rate,
        }
    )

    # Byzantine: ONE forger, all-1 inputs — any decided 0 is fabricated.
    validity_ok = summarize_trials(
        [
            run_byzantine_agreement(
                n=n, alpha=ALPHA, byzantine_count=1, seed=seed
            ).validity_holds
            for seed in seed_sequence(2, trials)
        ]
    )
    rows.append(
        {
            "scenario": "1 Byzantine zero-forger",
            "guarantee": "validity",
            "survives": validity_ok.rate,
        }
    )

    crash_le = summarize_trials(
        [
            elect_leader(n=n, alpha=ALPHA, seed=seed, adversary="random").success
            for seed in seed_sequence(3, trials)
        ]
    )
    rows.append(
        {
            "scenario": f"{n // 2} crash-faulty nodes (election)",
            "guarantee": "unique leader",
            "survives": crash_le.rate,
        }
    )

    not_captured = summarize_trials(
        [
            not run_byzantine_election(
                n=n, alpha=ALPHA, byzantine_count=1, seed=seed
            ).byzantine_won
            for seed in seed_sequence(4, trials)
        ]
    )
    rows.append(
        {
            "scenario": "1 Byzantine rank-forger (claims rank 1)",
            "guarantee": "election not captured",
            "survives": not_captured.rate,
        }
    )

    print(format_table(rows, title=f"crash vs Byzantine at n={n} ({trials} seeds)"))
    print(
        "\nthe committee trusts every well-formed message — one forged rank or "
        "bit hijacks it.  Making the committee verifiable without blowing the "
        "sqrt(n) message budget is exactly the paper's open problem 3."
    )


if __name__ == "__main__":
    main()
