#!/usr/bin/env python
"""Rolling epochs: leader failover, CDN-style.

The paper's introduction motivates leader election with fault-tolerant
infrastructure (Akamai uses election as a failover subroutine; Paxos
elects coordinators).  This example simulates that usage pattern: a
service runs in epochs; each epoch elects a leader with the Section IV-A
protocol; the adversary then assassinates the leader (it was faulty with
probability ~1-alpha, exactly as Theorem 4.1 prices in), and the next
epoch re-elects over the survivors.

Usage::

    python examples/rolling_epochs.py [n] [epochs]
"""

import sys

from repro import elect_leader
from repro.analysis.tables import format_table
from repro.rng import derive_seed

ALPHA = 0.5


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    epochs = int(sys.argv[2]) if len(sys.argv) > 2 else 6

    rows = []
    total_messages = 0
    master_seed = 2026
    for epoch in range(1, epochs + 1):
        seed = derive_seed(master_seed, "epoch", epoch)
        result = elect_leader(n=n, alpha=ALPHA, seed=seed, adversary="lazy")
        total_messages += result.messages
        leader = result.leader_node
        rows.append(
            {
                "epoch": epoch,
                "leader": leader,
                "leader_rank": result.ranks.get(leader) if leader is not None else None,
                "leader_faulty": result.leader_is_faulty,
                "messages": result.messages,
                "elected_ok": result.success,
            }
        )

    print(format_table(rows, title=f"rolling election epochs (n={n}, alpha={ALPHA})"))
    faulty_leaders = sum(1 for r in rows if r["leader_faulty"])
    print(
        f"\n{epochs} epochs, {total_messages} total messages "
        f"(~{total_messages // epochs} per failover)."
    )
    print(
        f"{faulty_leaders}/{epochs} elected leaders were faulty — Theorem 4.1 "
        f"promises non-faulty leaders only w.p. >= alpha = {ALPHA}; a real "
        f"deployment re-elects when the leader dies, which is this loop."
    )


if __name__ == "__main__":
    main()
