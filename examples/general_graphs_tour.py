#!/usr/bin/env python
"""General-graphs tour: leader election beyond the complete network.

The paper's protocols need the complete topology (candidates sample
referee ports directly among all n nodes).  Its conclusion asks (open
problem 2) about general graphs.  This example runs the random-walk-based
election of repro.extensions.general_graphs — sampling by mixing instead
of by ports — across topologies with very different mixing times, and
compares against the complete-graph protocol.

Usage::

    python examples/general_graphs_tour.py [n]
"""

import sys

from repro import elect_leader
from repro.analysis.stats import summarize_trials
from repro.analysis.tables import format_table
from repro.extensions import walk_based_leader_election
from repro.rng import seed_sequence

TRIALS = 5


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 400

    rows = []
    for kind in ("complete", "regular", "torus"):
        outcomes = [
            walk_based_leader_election(n=n, graph_kind=kind, seed=seed)
            for seed in seed_sequence(1, TRIALS)
        ]
        success = summarize_trials([o.success for o in outcomes])
        rows.append(
            {
                "topology": f"{kind} (walk-based, [43]-style)",
                "success": success.rate,
                "messages": round(
                    sum(o.messages for o in outcomes) / TRIALS
                ),
                "rounds": outcomes[0].rounds,
            }
        )

    # Reference: the paper's port-sampling protocol on the complete graph.
    reference = [
        elect_leader(n=n, alpha=1.0, seed=seed, adversary="none")
        for seed in seed_sequence(2, TRIALS)
    ]
    rows.append(
        {
            "topology": "complete (paper protocol, port sampling)",
            "success": summarize_trials([r.success for r in reference]).rate,
            "messages": round(sum(r.messages for r in reference) / TRIALS),
            "rounds": reference[0].rounds,
        }
    )

    print(format_table(rows, title=f"leader election across topologies (n={n})"))
    print(
        "\nwalk endpoints replace port samples: on an expander a walk mixes in "
        "O(log n) steps, so the cost stays Õ(sqrt(n) · t_mix); on the torus "
        "t_mix blows up and so does the bill.  Crash tolerance on general "
        "graphs remains open — a crash severs walks mid-flight."
    )


if __name__ == "__main__":
    main()
