#!/usr/bin/env python
"""Adversary gauntlet: both protocols against every crash strategy.

Runs leader election and agreement against the full adversary portfolio —
including the fully adaptive strategy that watches the wire and crashes
the current minimum-rank proposer mid-broadcast — and prints one row per
(protocol, adversary).

Usage::

    python examples/adversary_gauntlet.py [n] [alpha] [trials]
"""

import sys

from repro import agree, elect_leader
from repro.analysis.stats import summarize_trials
from repro.analysis.tables import format_table
from repro.rng import seed_sequence

ADVERSARIES = ["none", "eager", "lazy", "random", "staggered", "split", "adaptive"]


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    alpha = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    trials = int(sys.argv[3]) if len(sys.argv) > 3 else 5

    rows = []
    for adversary in ADVERSARIES:
        elections = [
            elect_leader(n=n, alpha=alpha, seed=seed, adversary=adversary)
            for seed in seed_sequence(1, trials)
        ]
        agreements = [
            agree(n=n, alpha=alpha, inputs="mixed", seed=seed, adversary=adversary)
            for seed in seed_sequence(2, trials)
        ]
        rows.append(
            {
                "adversary": adversary,
                "LE success": summarize_trials([r.success for r in elections]).rate,
                "LE messages": round(
                    sum(r.messages for r in elections) / trials
                ),
                "AG success": summarize_trials([r.success for r in agreements]).rate,
                "AG messages": round(
                    sum(r.messages for r in agreements) / trials
                ),
            }
        )

    print(
        format_table(
            rows,
            title=f"adversary gauntlet (n={n}, alpha={alpha}, {trials} seeds each)",
        )
    )
    print(
        "\nnote: 'eager' kills all faulty nodes in round 1 — cheaper runs, "
        "smaller committees; 'adaptive' hunts the would-be leader every round."
    )


if __name__ == "__main__":
    main()
