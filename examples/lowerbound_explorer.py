#!/usr/bin/env python
"""Lower-bound explorer: watch agreement collapse under message budgets.

Theorems 4.2/5.2 say no algorithm can succeed with probability better than
2/e + eps on o(sqrt(n)/alpha^1.5) messages.  This example caps the
agreement protocol's global message budget at decreasing fractions of its
uncapped cost and plots (textually) the success collapse; it also rebuilds
the proofs' influence-cloud decomposition from a real trace.

Usage::

    python examples/lowerbound_explorer.py [n]
"""

import sys

from repro import agree
from repro.analysis.tables import format_table
from repro.lowerbound.bounds import lower_bound_messages, min_initiators
from repro.lowerbound.budget import budget_curve
from repro.lowerbound.clouds import influence_clouds

ALPHA = 0.5


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512

    uncapped = agree(n=n, alpha=ALPHA, inputs="mixed", seed=9, adversary="random")
    bound = lower_bound_messages(n, ALPHA)
    print(
        f"uncapped agreement run: {uncapped.messages} messages "
        f"(= {uncapped.messages / bound:.0f} x the Omega(sqrt(n)/alpha^1.5) bound)\n"
    )

    multipliers = [0.01, 0.05, 0.2, 0.5, 1.0]
    curve = budget_curve(
        "agreement",
        n=n,
        alpha=ALPHA,
        multipliers=multipliers,
        trials=10,
        master_seed=10,
        unit=float(uncapped.messages),
    )
    rows = []
    for multiplier in multipliers:
        summary = curve[multiplier]
        budget = int(multiplier * uncapped.messages)
        bar = "#" * int(summary.rate * 30)
        rows.append(
            {
                "budget": budget,
                "x bound": round(budget / bound, 1),
                "success": f"{summary.rate:.0%}",
                "plot": bar,
            }
        )
    print(format_table(rows, title="success vs message budget"))

    # Influence clouds (the lower-bound proof's combinatorics) on a trace.
    traced = agree(
        n=n, alpha=ALPHA, inputs="mixed", seed=11, adversary="random",
        collect_trace=True,
    )
    decomposition = influence_clouds(traced.trace, n)
    sizes = decomposition.cloud_sizes()
    print(
        f"\ninfluence clouds: {len(decomposition.initiators)} initiators "
        f"(Lemma 4 needs >= {min_initiators(ALPHA):.0f}); "
        f"cloud sizes min={sizes[0]}, max={sizes[-1]}; "
        f"smallest disjoint from the rest: {decomposition.smallest_disjoint}"
    )
    print(
        "with full budget the clouds all merge (everyone influences everyone "
        "through the referees) — starve the budget and they fall apart into "
        "the independent trees of Lemma 8, which is why agreement fails."
    )


if __name__ == "__main__":
    main()
