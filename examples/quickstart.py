#!/usr/bin/env python
"""Quickstart: elect a leader and reach agreement in a crash-fault network.

Runs the paper's two protocols on a 512-node anonymous complete network in
which half the nodes are faulty (crash at adversary-chosen times), then
prints what happened.

Usage::

    python examples/quickstart.py [n] [alpha]
"""

import sys

from repro import agree, elect_leader
from repro.analysis.tables import format_table


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    alpha = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    print(f"network: {n} nodes, >= {alpha:.0%} non-faulty, anonymous (KT0), CONGEST")
    print()

    # ------------------------------------------------------------------
    # Leader election (paper, Section IV-A)
    # ------------------------------------------------------------------
    election = elect_leader(n=n, alpha=alpha, seed=42, adversary="random")
    print(format_table([election.summary()], title="implicit leader election"))
    leader = election.leader_node
    print(
        f"\n-> node {leader} won with rank {election.ranks[leader]}"
        f" (faulty: {election.leader_is_faulty});"
        f" committee had {election.committee_size} candidates\n"
    )

    # ------------------------------------------------------------------
    # Binary agreement (paper, Section V-A)
    # ------------------------------------------------------------------
    agreement = agree(n=n, alpha=alpha, inputs="mixed", seed=42, adversary="random")
    print(format_table([agreement.summary()], title="implicit agreement"))
    print(
        f"\n-> decided {agreement.decision} "
        f"({len(agreement.decided_bits)} nodes decided; "
        f"the rest stay undecided — that is the *implicit* problem)\n"
    )

    # The headline: sublinear growth in n (the constants only pay off at
    # scale — run with a larger n to see the gap widen).
    broadcast_cost = n * (n - 1)
    print(
        f"one all-to-all broadcast would cost {broadcast_cost} messages; "
        f"election used {election.messages}, agreement used {agreement.messages}."
    )
    print(
        "both protocols grow ~sqrt(n) while flooding grows n^2 — "
        "see examples/scaling_study.py for the fitted exponents."
    )


if __name__ == "__main__":
    main()
