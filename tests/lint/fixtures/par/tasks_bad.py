"""PAR001 task-module fixture: tasks must accept ``seed=``."""


def no_seed_task(value):  # PAR001: scheduler calls task(seed=..., **point)
    return value


def seeded_task(seed=0, **point):
    return seed, point


def kwargs_task(**kwargs):  # fine: absorbs seed via **kwargs
    return kwargs


def _private_helper(value):  # fine: not a public task
    return value
