"""PAR001 positive fixture: unpicklable/unresolvable task refs."""


def launch(run):
    run(task=lambda seed: seed)  # PAR001: lambda task


MISSING_REF = "fixmod:missing_task"  # PAR001: no such function
NESTED_REF = "fixmod:Outer.inner"  # PAR001: not top-level
NO_MODULE_REF = "fixmod.nowhere:task"  # PAR001: no such module
