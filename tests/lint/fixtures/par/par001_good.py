"""PAR001 negative fixture: resolvable refs and real callables."""

GOOD_REF = "fixmod:good_task"  # resolves to a top-level def
UNRELATED = "urn:uuid"  # not under a configured ref prefix: ignored
PROSE = "module:qualname"  # docstring-style example: ignored


def launch(run, task_fn):
    run(task=task_fn)  # a named callable is fine
