"""Pragma fixture: a justified pragma that suppresses nothing is stale."""


def quiet():  # repro: lint-ignore[DET001] nothing on this line trips DET001
    return 1
