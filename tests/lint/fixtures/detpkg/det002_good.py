"""DET002 negative fixture: ordered or order-free set use."""


def f(items):
    for x in sorted(set(items)):  # sorted: deterministic
        del x
    allowed = {1, 2, 3}
    flags = [x in allowed for x in items]  # membership, not iteration
    ordered = {"a": 1, "b": 2}
    for key in ordered:  # dict iteration is insertion-ordered
        del key
    return flags
