# repro: lint-ignore-file[DET001] fixture: wall-clock use is pervasive and
# deliberate in this module
"""Pragma fixture: file-level suppression."""

import time

FIRST = time.time()
SECOND = time.time()
