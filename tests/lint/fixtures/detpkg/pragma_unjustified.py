"""Pragma fixture: a pragma with no justification suppresses nothing."""

import time

NOW = time.time()  # repro: lint-ignore[DET001]
