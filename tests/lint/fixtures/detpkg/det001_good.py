"""DET001 negative fixture: disciplined randomness only."""

import random
import time
from random import Random  # allowed: the class itself (must be seeded)


def draw(rng: random.Random) -> float:
    """Draws flow from an explicit rng parameter."""
    return rng.random()


SEEDED = random.Random(1234)  # seeded: reproducible
ALSO_SEEDED = Random(5678)
MONO = time.monotonic()  # monotonic timers are not behavioural entropy
