"""DET001 positive fixture: every ambient nondeterminism source."""

import os
import random
import time
import uuid
from random import randint  # DET001: banned from-import

SEED = random.random()  # DET001: module-level RNG
RNG = random.Random()  # DET001: unseeded Random
NOW = time.time()  # DET001: wall clock
TOKEN = os.urandom(8)  # DET001: OS entropy
RUN_ID = uuid.uuid4()  # DET001: entropy-backed uuid
