"""Pragma fixture: justified suppressions (same-line and line-above)."""

import time

NOW = time.time()  # repro: lint-ignore[DET001] fixture: same-line pragma

# repro: lint-ignore[DET001] fixture: pragma on the comment line above,
# with the justification running onto a second comment line
LATER = time.time()
