"""Pragma fixture: a pragma only suppresses the rules it names."""

import time

NOW = time.time()  # repro: lint-ignore[IO001] names the wrong rule
