"""DET002 positive fixture: hash-order iteration."""


def f(items, other):
    for x in set(items):  # DET002: bare set() iteration
        del x
    literal = [x for x in {1, 2, 3}]  # DET002: set literal comprehension
    union = [x for x in set(items) | set(other)]  # DET002: set union
    for i, x in enumerate(frozenset(items)):  # DET002: through enumerate
        del i, x
    return literal, union
