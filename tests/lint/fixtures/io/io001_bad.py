"""IO001 positive fixture: engine code writing to stdout."""

import sys


def run():
    print("progress: 50%")  # IO001: bare print
    print("progress: 100%", file=sys.stdout)  # IO001: explicit stdout
