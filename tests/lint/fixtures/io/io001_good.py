"""IO001 negative fixture: diagnostics routed off stdout."""

import sys


def run(handle):
    print("progress: 50%", file=sys.stderr)
    print("row", file=handle)  # explicit destination chosen by the caller
