"""IO001 scoping fixture: excluded via [lint.rules.IO001] exclude."""


def run():
    print("this file is a CLI entry point in the fixture config")
