"""VEC001 fixtures: sanctioned iteration patterns (no findings)."""

import numpy as np


def tolist_escape(mask):
    total = 0
    for i in np.flatnonzero(mask).tolist():  # bulk conversion: fine
        total += i
    return total


def tracked_local_tolist(values):
    arr = np.asarray(values)
    return [v + 1 for v in arr.tolist()]  # tolist on a tracked local: fine


def plain_python(values):
    out = []
    for v in sorted(values):  # plain container: fine
        out.append(v)
    for i in range(len(values)):  # range: fine
        out.append(i)
    return out


def np_scalar_reduction(mask):
    # Calling np without iterating it is fine.
    return int(np.count_nonzero(mask))
