"""VEC001 fixtures: numpy iteration the rule must flag."""

import numpy as np


def direct_np_call(mask):
    total = 0
    for i in np.flatnonzero(mask):  # flagged: direct np call
        total += i
    return total


def subscripted_np_result(mask):
    out = []
    for i in np.where(mask)[0]:  # flagged: subscript of np call
        out.append(i)
    return out


def tracked_local(mask):
    hits = np.flatnonzero(mask)
    return [i * 2 for i in hits]  # flagged: local bound to np expression


def masked_subscript(values, mask):
    arr = np.asarray(values)
    return [int(v) for v in arr[mask]]  # flagged: subscript of tracked local


def wrapped_builtin(mask):
    for rank, i in enumerate(np.flatnonzero(mask)):  # flagged: via enumerate
        if rank > 3:
            return i
    return -1


def pragma_with_reason(mask):
    # repro: lint-ignore[VEC001] cold path exercised once per run
    for i in np.flatnonzero(mask):
        return i
    return -1
