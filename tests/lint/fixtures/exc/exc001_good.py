"""EXC001 negatives: broad catches that re-raise or journal, and the
``except Exception`` resilience net the rule deliberately allows."""


def reraises():
    try:
        risky()
    except BaseException:
        cleanup()
        raise


def wraps_and_raises():
    try:
        risky()
    except:  # noqa: E722
        raise RuntimeError("wrapped")


def journals_the_catch(journal):
    try:
        risky()
    except BaseException as exc:
        journal.append({"status": "failed", "error": str(exc)})


def journal_helper_call(outcome):
    try:
        risky()
    except:  # noqa: E722
        journal_outcome(outcome)


def exception_net_is_fine():
    # The resilience layer's normal catch: BaseException still flows.
    try:
        risky()
    except Exception:
        pass


def narrow_catch_is_fine():
    try:
        risky()
    except ValueError:
        pass


def risky():
    raise ValueError("boom")


def cleanup():
    pass


def journal_outcome(outcome):
    pass
