"""EXC001 positives: broad catches that swallow the exception."""


def bare_swallow():
    try:
        risky()
    except:  # noqa: E722 - the point of the fixture
        pass


def base_exception_swallow():
    try:
        risky()
    except BaseException:
        cleanup()


def tuple_swallow():
    try:
        risky()
    except (ValueError, BaseException) as exc:
        log(exc)


def risky():
    raise ValueError("boom")


def cleanup():
    pass


def log(exc):
    pass
