"""Excluded via [lint] exclude: nothing here is ever reported."""

import random

AMBIENT = random.random()
print("stdout")
