"""PAR001 registry fixture: every entry imported and defined."""

from .reg_mod import E_GOOD
from .reg_mod import E_ALIASED as E_LOCAL

E_INLINE = object()

_ALL = [E_GOOD, E_LOCAL, E_INLINE]
