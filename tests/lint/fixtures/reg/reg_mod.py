"""Source module for the registry fixtures."""

E_GOOD = object()
E_ALIASED = object()
