"""PAR001 registry fixture: entries that do not resolve."""

from .reg_mod import E_MISSING  # reg_mod does not define this

_ALL = [E_MISSING, E_UNDEFINED]  # noqa: F821 - deliberately dangling
