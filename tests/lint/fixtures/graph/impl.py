"""Callgraph fixture: the base module real work lives in."""


def leaf():
    return 1


def helper():
    return leaf()


class Widget:
    def __init__(self, size):
        self.size = size

    def grow(self):
        return helper() + self.size

    def spin(self):
        return self.grow()
