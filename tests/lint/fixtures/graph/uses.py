"""Callgraph fixture: every resolution shape in one consumer module."""

import graph.impl as gi
from graph.api import Widget, aliased_helper


def call_via_module_alias():
    return gi.helper()


def call_via_reexport():
    return aliased_helper()


def build_widget():
    return Widget(3)


def dispatch():
    ref = "graph.impl:leaf"
    return ref
