"""Callgraph fixture: a re-export facade (relative import + rename)."""

from .impl import Widget, helper as aliased_helper

__all__ = ["Widget", "aliased_helper"]
