"""Callgraph fixture package."""
