"""PERF001 positive fixture: a hot-path class without __slots__."""


class Hot:  # PERF001: per-instance __dict__ on a hot path
    def __init__(self):
        self.x = 1
