"""PERF001 negative fixture: slots, dataclasses, exceptions."""

from dataclasses import dataclass


class Packed:
    __slots__ = ("x",)

    def __init__(self):
        self.x = 1


@dataclass
class PerRunContainer:  # dataclasses are exempt (3.9: no slots=True)
    x: int = 0


class HotPathError(Exception):  # exception types are exempt
    pass
