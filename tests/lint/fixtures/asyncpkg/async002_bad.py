"""ASYNC002 fixture: coroutine results that silently disappear."""

import asyncio


async def work():
    return 1


async def drops_coroutine():
    work()


async def drops_task():
    asyncio.create_task(work())


def sync_caller_drops():
    work()
