"""ASYNC001 fixture: blocking calls directly on the event loop."""

import queue
import threading
import time


WORK = queue.Queue()
GATE = threading.Lock()


async def sleeper():
    time.sleep(0.5)


async def reader():
    with open("data.txt") as fh:
        return fh.read()


async def drainer():
    return WORK.get()


async def acquirer():
    GATE.acquire()
    try:
        return 1
    finally:
        GATE.release()
