"""ASYNC001 fixture: the sanctioned escapes stay quiet."""

import asyncio
import queue
import time


WORK = queue.Queue()


async def pauser():
    await asyncio.sleep(0.5)


async def offloaded():
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, WORK.get)


async def offloaded_nested():
    def pull():
        time.sleep(0.1)
        return WORK.get()

    return await asyncio.to_thread(pull)


def plain_sync_code():
    time.sleep(0.1)
    return WORK.get()
