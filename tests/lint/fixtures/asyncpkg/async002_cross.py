"""ASYNC002 fixture: dropping an *imported* coroutine's result."""

from asyncpkg.coros import acoro


def fire_and_forget():
    acoro()
