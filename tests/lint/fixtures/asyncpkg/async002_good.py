"""ASYNC002 fixture: awaited, stored, and gathered results are fine."""

import asyncio


async def work():
    return 1


async def awaits_it():
    await work()


async def stores_the_task():
    task = asyncio.create_task(work())
    return await task


async def gathers():
    return await asyncio.gather(work(), work())


def stores_the_coroutine():
    pending = work()
    return pending
