"""ASYNC003 fixture: a threading primitive held across an await."""

import asyncio
import threading


GATE = threading.Lock()


class Holder:
    def __init__(self):
        self._cond = threading.Condition()

    async def parked(self):
        with self._cond:
            await asyncio.sleep(0.1)


async def held_across():
    with GATE:
        await asyncio.sleep(0.1)
