"""ASYNC003 fixture: release before awaiting, or use asyncio locks."""

import asyncio
import threading


GATE = threading.Lock()
ALOCK = asyncio.Lock()


async def released_before_await():
    with GATE:
        value = 1
    await asyncio.sleep(0.1)
    return value


async def asyncio_lock_is_fine():
    async with ALOCK:
        await asyncio.sleep(0.1)
