"""ASYNC002 fixture: a coroutine imported by another module."""


async def acoro():
    return 1
