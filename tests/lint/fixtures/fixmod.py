"""Target module for PAR001 string-reference fixtures."""


def good_task(seed=0, **point):
    """A resolvable module-level task."""
    return seed, point


class Outer:
    def inner(self, seed=0):
        return seed
