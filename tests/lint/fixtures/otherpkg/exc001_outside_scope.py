"""Identical swallow outside the guarded modules: out of EXC001's scope."""


def swallow_everything():
    try:
        raise ValueError("boom")
    except BaseException:
        pass
