"""DET rules apply only inside the configured deterministic packages."""

import random

AMBIENT = random.random()  # not flagged: otherpkg is out of scope

for item in set([3, 1, 2]):  # not flagged either
    del item
