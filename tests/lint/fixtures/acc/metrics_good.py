"""ACC001 negative fixture: merge covers every declared counter."""


class Metrics:
    messages_sent: int = 0
    messages_expired: int = 0
    crashes: int = 0

    @classmethod
    def merge(cls, parts):
        merged = cls()
        for part in parts:
            merged.messages_sent += part.messages_sent
            merged.messages_expired += part.messages_expired
            merged.crashes += part.crashes
        return merged
