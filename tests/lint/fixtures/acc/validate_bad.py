"""ACC001 positive fixture: a message counter escapes validation."""


def validate(metrics):
    # messages_expired is never referenced here -> ACC001
    return metrics.messages_sent >= 0
