"""ACC001 positive fixture: merge silently drops a counter."""


class Metrics:
    messages_sent: int = 0
    messages_expired: int = 0  # ACC001: never folded by merge()

    @classmethod
    def merge(cls, parts):
        merged = cls()
        for part in parts:
            merged.messages_sent += part.messages_sent
        return merged
