"""ACC001 negative fixture: the validator sees every message counter."""


def validate(metrics):
    return metrics.messages_sent == metrics.messages_expired
