"""Symbol table + call graph construction over the graph/ fixtures."""

from repro.lint import collect_files, config_from_dict
from repro.lint.callgraph import TASKREF, ProjectContext, build_call_graph
from repro.lint.symbols import SymbolTable

from .conftest import FIXTURES


def graph_config():
    return config_from_dict(
        {
            "lint": {
                "source_roots": ["."],
                "rules": {"PAR001": {"ref_prefixes": ["graph"]}},
            }
        },
        root=FIXTURES,
    )


def build():
    config = graph_config()
    files = collect_files([FIXTURES / "graph"], config)
    return build_call_graph(files, config), files, config


def test_symbol_table_modules_and_functions():
    config = graph_config()
    files = collect_files([FIXTURES / "graph"], config)
    table = SymbolTable.build(files, config)
    assert set(table.modules) == {
        "graph",
        "graph.api",
        "graph.impl",
        "graph.uses",
    }
    impl = table.modules["graph.impl"]
    assert "leaf" in impl.functions
    assert "Widget.grow" in impl.functions
    assert "<module>" in impl.functions  # the module pseudo-function
    assert impl.classes == {"Widget": {"__init__", "grow", "spin"}}


def test_module_alias_call_resolves():
    graph, _, _ = build()
    callees = [s.callee for s in graph.calls_from("graph.uses:call_via_module_alias")]
    assert callees == ["graph.impl:helper"]


def test_reexport_chain_resolves_to_origin():
    graph, _, _ = build()
    callees = [s.callee for s in graph.calls_from("graph.uses:call_via_reexport")]
    assert callees == ["graph.impl:helper"]


def test_class_constructor_resolves_to_init():
    graph, _, _ = build()
    callees = [s.callee for s in graph.calls_from("graph.uses:build_widget")]
    assert callees == ["graph.impl:Widget.__init__"]


def test_self_method_call_resolves():
    graph, _, _ = build()
    callees = [s.callee for s in graph.calls_from("graph.impl:Widget.spin")]
    assert callees == ["graph.impl:Widget.grow"]


def test_task_ref_string_becomes_edge():
    graph, _, _ = build()
    sites = graph.calls_from("graph.uses:dispatch")
    assert len(sites) == 1
    site = sites[0]
    assert site.callee == "graph.impl:leaf"
    assert site.kind == TASKREF
    assert site.relpath == "graph/uses.py"


def test_reverse_edges_collect_all_callers():
    graph, _, _ = build()
    callers = sorted(s.caller for s in graph.callers_of("graph.impl:helper"))
    assert callers == [
        "graph.impl:Widget.grow",
        "graph.uses:call_via_module_alias",
        "graph.uses:call_via_reexport",
    ]


def test_construction_is_deterministic():
    first, _, _ = build()
    second, _, _ = build()
    assert first.out == second.out
    assert first.into == second.into


def test_project_context_builds_graph_once():
    config = graph_config()
    files = collect_files([FIXTURES / "graph"], config)
    context = ProjectContext(files, config)
    graph = context.graph
    assert context.graph is graph
    assert context.symbols is graph.symbols
