"""DET003 nondeterminism taint flow: chains, sanitizers, pragma cuts."""

import textwrap

from repro.lint import collect_files, config_from_dict, lint_paths
from repro.lint.callgraph import ProjectContext
from repro.lint.dataflow import NondeterminismFlowRule


def make_tree(tmp_path, files, extra_rules=None):
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    rules = {"DET003": {"sanitizers": ["facade"]}}
    if extra_rules:
        rules.update(extra_rules)
    config = config_from_dict(
        {
            "lint": {
                "source_roots": ["."],
                "deterministic": ["det"],
                "rules": rules,
            }
        },
        root=tmp_path,
    )
    files = collect_files([tmp_path], config)
    return files, config


def run_rule(files, config):
    context = ProjectContext(files, config)
    return NondeterminismFlowRule().check_project(files, config, context)


def test_transitive_chain_is_found_with_evidence(tmp_path):
    files, config = make_tree(
        tmp_path,
        {
            "det/algo.py": """\
                from helpers.util import stamp


                def run(n):
                    return stamp(n)
                """,
            "helpers/__init__.py": "",
            "helpers/util.py": """\
                import time


                def stamp(n):
                    return inner(n)


                def inner(n):
                    return n + time.time()
                """,
            "det/__init__.py": "",
        },
    )
    findings = run_rule(files, config)
    assert [f.rule for f in findings] == ["DET003"]
    finding = findings[0]
    assert finding.path == "det/algo.py"
    assert finding.line == 5  # the boundary call site, not the source
    # Full evidence chain, hop by hop, down to the external source.
    assert "det.algo:run -> helpers.util:stamp" in finding.message
    assert "helpers.util:inner (helpers/util.py:5)" in finding.message
    assert "time.time (helpers/util.py:9)" in finding.message


def test_sanitizer_module_blocks_taint(tmp_path):
    files, config = make_tree(
        tmp_path,
        {
            "det/algo.py": """\
                from facade import derive


                def run(n):
                    return derive(n)
                """,
            "facade.py": """\
                import time


                def derive(n):
                    return n + time.time()
                """,
        },
    )
    assert run_rule(files, config) == []


def test_seeded_random_is_not_a_source(tmp_path):
    files, config = make_tree(
        tmp_path,
        {
            "det/algo.py": """\
                from helpers import draw


                def run(seed):
                    return draw(seed)
                """,
            "helpers.py": """\
                import random


                def draw(seed):
                    rng = random.Random(seed)
                    return rng.random()
                """,
        },
    )
    assert run_rule(files, config) == []


def test_unseeded_random_constructor_is_a_source(tmp_path):
    files, config = make_tree(
        tmp_path,
        {
            "det/algo.py": """\
                from helpers import draw


                def run():
                    return draw()
                """,
            "helpers.py": """\
                import random


                def draw():
                    rng = random.Random()
                    return rng.random()
                """,
        },
    )
    findings = run_rule(files, config)
    assert [f.rule for f in findings] == ["DET003"]
    assert "random.Random" in findings[0].message


def test_set_iteration_escape_is_a_source(tmp_path):
    files, config = make_tree(
        tmp_path,
        {
            "det/algo.py": """\
                from helpers import order


                def run(items):
                    return order(items)
                """,
            "helpers.py": """\
                def order(items):
                    return [x for x in set(items)]
                """,
        },
    )
    findings = run_rule(files, config)
    assert [f.rule for f in findings] == ["DET003"]
    assert "set iteration" in findings[0].message


def test_det003_pragma_suppresses_and_counts_as_used(tmp_path):
    files, config = make_tree(
        tmp_path,
        {
            "det/algo.py": """\
                from helpers import stamp


                def run(n):
                    # repro: lint-ignore[DET003] boundary is deliberate here
                    return stamp(n)
                """,
            "helpers.py": """\
                import time


                def stamp(n):
                    return n + time.time()
                """,
        },
    )
    report = lint_paths([tmp_path], config)
    # The finding is suppressed AND the pragma is not reported stale.
    assert report.clean, report.render_text()


def test_pragma_on_intermediate_edge_cuts_the_flow(tmp_path):
    files, config = make_tree(
        tmp_path,
        {
            "det/algo.py": """\
                from helpers import stamp


                def run(n):
                    return stamp(n)
                """,
            "helpers.py": """\
                import time


                def stamp(n):
                    # repro: lint-ignore[DET003] wall clock is metadata only
                    return n + inner(n)


                def inner(n):
                    return n + time.time()
                """,
        },
    )
    report = lint_paths([tmp_path], config)
    assert report.clean, report.render_text()


def test_taskref_edge_carries_taint(tmp_path):
    files, config = make_tree(
        tmp_path,
        {
            "det/algo.py": """\
                def dispatch():
                    ref = "helpers:stamp"
                    return ref
                """,
            "helpers.py": """\
                import time


                def stamp(n):
                    return n + time.time()
                """,
        },
        extra_rules={"PAR001": {"ref_prefixes": ["helpers"]}},
    )
    findings = run_rule(files, config)
    assert [f.rule for f in findings] == ["DET003"]
    assert "via task reference" in findings[0].message


def test_det_to_det_edges_are_not_double_reported(tmp_path):
    files, config = make_tree(
        tmp_path,
        {
            "det/outer.py": """\
                from det.inner import mid


                def run(n):
                    return mid(n)
                """,
            "det/inner.py": """\
                from helpers import stamp


                def mid(n):
                    return stamp(n)
                """,
            "det/__init__.py": "",
            "helpers.py": """\
                import time


                def stamp(n):
                    return n + time.time()
                """,
        },
    )
    findings = run_rule(files, config)
    # Only the boundary crossing in det/inner.py, not the det->det hop.
    assert [(f.rule, f.path) for f in findings] == [("DET003", "det/inner.py")]
