"""JSON report schema and the ``repro lint`` CLI surface."""

import json

from repro.cli import main

from .conftest import FIXTURES

CONFIG = str(FIXTURES / ".reprolint.toml")


def _lint_cli(*argv):
    return main(["lint", *argv])


# ----------------------------------------------------------------------
# JSON schema
# ----------------------------------------------------------------------


def test_json_schema(lint_fixture):
    report = lint_fixture("detpkg/det001_bad.py")
    data = json.loads(report.render_json())
    assert set(data) == {"version", "root", "files_checked", "findings", "summary"}
    assert data["version"] == 1
    assert data["files_checked"] == 1
    assert set(data["summary"]) == {"total", "by_rule"}
    assert data["summary"]["total"] == len(data["findings"]) == 6
    assert data["summary"]["by_rule"] == {"DET001": 6}
    for finding in data["findings"]:
        assert set(finding) == {"rule", "severity", "path", "line", "col", "message"}
        assert finding["severity"] == "error"
        assert isinstance(finding["line"], int) and finding["line"] >= 1
        assert isinstance(finding["col"], int) and finding["col"] >= 1


def test_json_output_is_stable(lint_fixture):
    first = lint_fixture("detpkg/det001_bad.py").render_json()
    second = lint_fixture("detpkg/det001_bad.py").render_json()
    assert first == second


def test_text_rendering(lint_fixture):
    clean = lint_fixture("detpkg/det001_good.py").render_text()
    assert "clean" in clean and "0 findings" in clean
    dirty = lint_fixture("detpkg/det001_bad.py").render_text()
    assert "DET001 error:" in dirty
    assert "6 finding(s)" in dirty
    assert "DET001=6" in dirty


# ----------------------------------------------------------------------
# CLI exit codes and output
# ----------------------------------------------------------------------


def test_cli_clean_exits_zero(capsys):
    target = str(FIXTURES / "detpkg" / "det001_good.py")
    assert _lint_cli(target, "--config", CONFIG) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_findings_exit_one(capsys):
    target = str(FIXTURES / "detpkg" / "det001_bad.py")
    assert _lint_cli(target, "--config", CONFIG) == 1
    assert "DET001" in capsys.readouterr().out


def test_cli_config_error_exits_two(capsys, tmp_path):
    target = str(FIXTURES / "detpkg" / "det001_good.py")
    assert _lint_cli(target, "--config", str(tmp_path / "missing.toml")) == 2
    assert "repro lint:" in capsys.readouterr().err

    broken = tmp_path / ".reprolint.toml"
    broken.write_text("[lint]\ndeterministic = 7\n", encoding="utf-8")
    assert _lint_cli(target, "--config", str(broken)) == 2


def test_cli_missing_target_exits_two(capsys):
    # A typo'd path must not silently pass (exit 0 / zero files).
    missing = str(FIXTURES / "detpkg" / "does_not_exist.py")
    assert _lint_cli(missing, "--config", CONFIG) == 2
    assert "no such lint target" in capsys.readouterr().err


def test_cli_json_format(capsys):
    target = str(FIXTURES / "detpkg" / "det001_bad.py")
    assert _lint_cli(target, "--config", CONFIG, "--format", "json") == 1
    data = json.loads(capsys.readouterr().out)
    assert data["summary"]["by_rule"] == {"DET001": 6}


def test_cli_output_file(capsys, tmp_path):
    out = tmp_path / "lint-report.json"
    target = str(FIXTURES / "detpkg" / "det001_bad.py")
    # --output writes the JSON report even in text format mode.
    assert _lint_cli(target, "--config", CONFIG, "--output", str(out)) == 1
    capsys.readouterr()
    data = json.loads(out.read_text(encoding="utf-8"))
    assert data["version"] == 1
    assert data["summary"]["total"] == 6
