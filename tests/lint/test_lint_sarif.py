"""SARIF 2.1.0 rendering: schema shape, levels, determinism."""

import json

from repro.lint import render_sarif, sarif_dict
from repro.lint.sarif import RULE_DESCRIPTIONS


def test_sarif_schema_shape(lint_fixture):
    report = lint_fixture("detpkg/det001_bad.py")
    assert not report.clean  # the fixture must actually produce findings
    doc = json.loads(render_sarif(report))
    assert doc["version"] == "2.1.0"
    assert doc["$schema"].endswith("sarif-2.1.0.json")
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert rule_ids == sorted(rule_ids)  # catalogue sorted = deterministic
    for new_rule in ("DET003", "ASYNC001", "ASYNC002", "ASYNC003", "LINT002"):
        assert new_rule in rule_ids
    result = run["results"][0]
    assert result["ruleId"] == "DET001"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "detpkg/det001_bad.py"
    assert location["region"]["startLine"] == report.findings[0].line
    assert location["region"]["startColumn"] == report.findings[0].col
    # ruleIndex must point back at the catalogue entry for the rule.
    assert driver["rules"][result["ruleIndex"]]["id"] == "DET001"


def test_sarif_warning_level_for_lint002(lint_fixture):
    report = lint_fixture("detpkg/pragma_stale.py")
    doc = sarif_dict(report)
    (result,) = doc["runs"][0]["results"]
    assert result["ruleId"] == "LINT002"
    assert result["level"] == "warning"


def test_sarif_output_is_deterministic(lint_fixture):
    report = lint_fixture("detpkg/det001_bad.py")
    again = lint_fixture("detpkg/det001_bad.py")
    assert render_sarif(report) == render_sarif(again)


def test_every_rule_has_a_catalogue_description():
    from repro.lint import build_rules

    for rule in build_rules():
        assert rule.rule_id in RULE_DESCRIPTIONS, rule.rule_id
