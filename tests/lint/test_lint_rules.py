"""Per-rule positive/negative fixture tests (one pair per rule)."""

from repro.lint import config_from_dict, lint_paths

from .conftest import FIXTURES


def rules_of(report):
    return [finding.rule for finding in report.findings]


# ----------------------------------------------------------------------
# DET001 — ambient nondeterminism
# ----------------------------------------------------------------------


def test_det001_positive(lint_fixture):
    report = lint_fixture("detpkg/det001_bad.py")
    assert rules_of(report) == ["DET001"] * 6
    messages = " ".join(f.message for f in report.findings)
    assert "random.random()" in messages
    assert "no seed" in messages
    assert "time.time()" in messages
    assert "os.urandom()" in messages
    assert "uuid.uuid4()" in messages
    assert "from random import randint" in messages


def test_det001_negative(lint_fixture):
    assert lint_fixture("detpkg/det001_good.py").clean


def test_det001_out_of_scope(lint_fixture):
    # Identical patterns outside the deterministic packages are fine.
    assert lint_fixture("otherpkg/outside_scope.py").clean


# ----------------------------------------------------------------------
# DET002 — hash-order iteration
# ----------------------------------------------------------------------


def test_det002_positive(lint_fixture):
    report = lint_fixture("detpkg/det002_bad.py")
    assert rules_of(report) == ["DET002"] * 4


def test_det002_negative(lint_fixture):
    assert lint_fixture("detpkg/det002_good.py").clean


# ----------------------------------------------------------------------
# PAR001 — task references
# ----------------------------------------------------------------------


def test_par001_positive(lint_fixture):
    report = lint_fixture("par/par001_bad.py")
    assert rules_of(report) == ["PAR001"] * 4
    messages = " ".join(f.message for f in report.findings)
    assert "lambda" in messages
    assert "no top-level function" in messages
    assert "nested or method" in messages
    assert "does not exist" in messages


def test_par001_negative(lint_fixture):
    assert lint_fixture("par/par001_good.py").clean


def test_par001_task_module_requires_seed(lint_fixture):
    report = lint_fixture("par/tasks_bad.py")
    assert rules_of(report) == ["PAR001"]
    assert "no_seed_task" in report.findings[0].message


def test_par001_registry(lint_fixture):
    good = lint_fixture("reg/registry_good.py")
    assert good.clean, good.render_text()
    bad = lint_fixture("reg/registry_bad.py")
    assert rules_of(bad) == ["PAR001", "PAR001"]
    messages = " ".join(f.message for f in bad.findings)
    assert "E_MISSING" in messages
    assert "E_UNDEFINED" in messages


# ----------------------------------------------------------------------
# ACC001 — Metrics / merge / validator drift
# ----------------------------------------------------------------------


def _acc_config(metrics: str, validate: str):
    return config_from_dict(
        {
            "lint": {
                "source_roots": ["."],
                "rules": {
                    "ACC001": {"metrics": metrics, "validate": validate},
                },
            }
        },
        root=FIXTURES,
    )


def test_acc001_negative():
    config = _acc_config("acc/metrics_good.py", "acc/validate_good.py")
    report = lint_paths([FIXTURES / "acc"], config)
    acc = [f for f in report.findings if f.rule == "ACC001"]
    # Only the configured metrics/validate pair is checked; the *_bad
    # fixtures in the same directory are not configured here.
    assert acc == []


def test_acc001_merge_drift():
    config = _acc_config("acc/metrics_bad.py", "acc/validate_good.py")
    report = lint_paths([FIXTURES / "acc/metrics_bad.py"], config)
    assert rules_of(report) == ["ACC001"]
    finding = report.findings[0]
    assert "messages_expired" in finding.message
    assert finding.path == "acc/metrics_bad.py"
    # Anchored at the field declaration, not the class line.
    assert finding.line > 1


def test_acc001_validator_gap():
    config = _acc_config("acc/metrics_bad.py", "acc/validate_bad.py")
    report = lint_paths([FIXTURES / "acc/validate_bad.py"], config)
    assert rules_of(report) == ["ACC001"]
    assert "messages_expired" in report.findings[0].message
    assert report.findings[0].path == "acc/validate_bad.py"


def test_acc001_checks_only_linted_half():
    # Linting an unrelated file runs neither half.
    config = _acc_config("acc/metrics_bad.py", "acc/validate_bad.py")
    report = lint_paths([FIXTURES / "acc/metrics_good.py"], config)
    assert report.clean


# ----------------------------------------------------------------------
# PERF001 — hot-path __slots__
# ----------------------------------------------------------------------


def test_perf001_positive(lint_fixture):
    report = lint_fixture("hot/unslotted.py")
    assert rules_of(report) == ["PERF001"]
    assert "__slots__" in report.findings[0].message


def test_perf001_negative(lint_fixture):
    assert lint_fixture("hot/slotted.py").clean


def test_perf001_only_hot_modules(lint_fixture):
    # Classes without __slots__ outside the hot modules are fine.
    report = lint_fixture("acc/metrics_good.py")
    assert "PERF001" not in rules_of(report)


# ----------------------------------------------------------------------
# IO001 — stdout discipline
# ----------------------------------------------------------------------


def test_io001_positive(lint_fixture):
    report = lint_fixture("io/io001_bad.py")
    assert rules_of(report) == ["IO001", "IO001"]


def test_io001_negative(lint_fixture):
    assert lint_fixture("io/io001_good.py").clean


def test_io001_exclude(lint_fixture):
    assert lint_fixture("io/io001_excluded.py").clean


# ----------------------------------------------------------------------
# EXC001 — swallowed exceptions in supervision code
# ----------------------------------------------------------------------


def test_exc001_positive(lint_fixture):
    report = lint_fixture("exc/exc001_bad.py")
    assert rules_of(report) == ["EXC001"] * 3
    messages = " ".join(f.message for f in report.findings)
    assert "bare except:" in messages
    assert "except BaseException" in messages
    assert "re-raising or journaling" in messages


def test_exc001_negative(lint_fixture):
    assert lint_fixture("exc/exc001_good.py").clean


def test_exc001_out_of_scope(lint_fixture):
    # The same swallow outside the guarded modules is not flagged.
    assert lint_fixture("otherpkg/exc001_outside_scope.py").clean


# ----------------------------------------------------------------------
# VEC001 — numpy iteration in the vectorized engine
# ----------------------------------------------------------------------


def test_vec001_positive(lint_fixture):
    report = lint_fixture("vec/vec_bad.py")
    assert rules_of(report) == ["VEC001"] * 5
    assert ".tolist()" in report.findings[0].message
    flagged_lines = {f.line for f in report.findings}
    # The pragma'd loop at the bottom of the fixture is suppressed.
    assert max(flagged_lines) < 37


def test_vec001_negative(lint_fixture):
    assert lint_fixture("vec/vec_good.py").clean


def test_vec001_out_of_scope(lint_fixture):
    # The same iteration outside vec_modules is not flagged.
    report = lint_fixture("otherpkg/exc001_outside_scope.py")
    assert "VEC001" not in rules_of(report)
