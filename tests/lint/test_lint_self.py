"""The tree must pass its own linter — and the CI canary must fail it."""

import shutil

from repro.lint import lint_paths, load_config

from .conftest import REPO_ROOT


def test_repo_src_is_lint_clean():
    """``repro lint src/`` is clean in-tree (every pragma justified)."""
    config = load_config(REPO_ROOT / ".reprolint.toml")
    report = lint_paths([REPO_ROOT / "src"], config)
    assert report.files, "expected src/ to contain lintable files"
    assert report.clean, "\n" + report.render_text()


def test_injected_nondeterminism_fails_lint(tmp_path):
    """The CI canary: ambient randomness in sim/ must flip lint to red."""
    shutil.copy(REPO_ROOT / ".reprolint.toml", tmp_path / ".reprolint.toml")
    sim = tmp_path / "src" / "repro" / "sim"
    sim.mkdir(parents=True)
    node = sim / "node.py"
    node.write_text("import random\n\nJITTER = random.random()\n", encoding="utf-8")

    config = load_config(tmp_path / ".reprolint.toml")
    report = lint_paths([tmp_path / "src"], config)
    assert report.exit_code == 1
    assert [f.rule for f in report.findings] == ["DET001"]
    assert report.findings[0].path == "src/repro/sim/node.py"


def test_injected_blocking_call_in_net_fails_lint(tmp_path):
    """The ASYNC001 canary: the async rules have no path scope, so a
    blocking call inside a coroutine under src/repro/net/ must flip lint
    to red — the wire backend lives or dies by event-loop hygiene."""
    shutil.copy(REPO_ROOT / ".reprolint.toml", tmp_path / ".reprolint.toml")
    net = tmp_path / "src" / "repro" / "net"
    net.mkdir(parents=True)
    (net / "coord.py").write_text(
        "import time\n"
        "\n"
        "\n"
        "async def barrier():\n"
        "    time.sleep(1.0)\n",
        encoding="utf-8",
    )

    config = load_config(tmp_path / ".reprolint.toml")
    report = lint_paths([tmp_path / "src"], config)
    assert report.exit_code == 1
    assert [f.rule for f in report.findings] == ["ASYNC001"]
    assert report.findings[0].path == "src/repro/net/coord.py"
    assert "time.sleep" in report.findings[0].message


def test_real_net_package_is_async_lint_clean():
    """The shipped wire backend passes the async rules file by file
    (subsumed by the whole-tree check, but pinned here so a future scope
    change cannot silently exempt repro.net)."""
    config = load_config(REPO_ROOT / ".reprolint.toml")
    net = REPO_ROOT / "src" / "repro" / "net"
    report = lint_paths([net], config)
    assert len(report.files) >= 8, report.files
    assert report.clean, "\n" + report.render_text()


def test_injected_transitive_nondeterminism_fails_lint(tmp_path):
    """The DET003 canary: sim/ reaching time.time() through a helper
    module *outside* the deterministic packages must flip lint to red,
    with the full call chain in the finding."""
    shutil.copy(REPO_ROOT / ".reprolint.toml", tmp_path / ".reprolint.toml")
    sim = tmp_path / "src" / "repro" / "sim"
    obs = tmp_path / "src" / "repro" / "obsx"
    sim.mkdir(parents=True)
    obs.mkdir(parents=True)
    (sim / "node.py").write_text(
        "from repro.obsx.helper import jitter\n"
        "\n"
        "\n"
        "def act():\n"
        "    return jitter()\n",
        encoding="utf-8",
    )
    (obs / "helper.py").write_text(
        "import time\n"
        "\n"
        "\n"
        "def jitter():\n"
        "    return wobble()\n"
        "\n"
        "\n"
        "def wobble():\n"
        "    return time.time()\n",
        encoding="utf-8",
    )

    config = load_config(tmp_path / ".reprolint.toml")
    report = lint_paths([tmp_path / "src"], config)
    assert report.exit_code == 1
    assert [f.rule for f in report.findings] == ["DET003"]
    finding = report.findings[0]
    assert finding.path == "src/repro/sim/node.py"
    # The chain is rendered hop by hop down to the ambient source.
    assert "repro.sim.node:act -> repro.obsx.helper:jitter" in finding.message
    assert "repro.obsx.helper:wobble" in finding.message
    assert "time.time" in finding.message
