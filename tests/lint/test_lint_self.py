"""The tree must pass its own linter — and the CI canary must fail it."""

import shutil

from repro.lint import lint_paths, load_config

from .conftest import REPO_ROOT


def test_repo_src_is_lint_clean():
    """``repro lint src/`` is clean in-tree (every pragma justified)."""
    config = load_config(REPO_ROOT / ".reprolint.toml")
    report = lint_paths([REPO_ROOT / "src"], config)
    assert report.files, "expected src/ to contain lintable files"
    assert report.clean, "\n" + report.render_text()


def test_injected_nondeterminism_fails_lint(tmp_path):
    """The CI canary: ambient randomness in sim/ must flip lint to red."""
    shutil.copy(REPO_ROOT / ".reprolint.toml", tmp_path / ".reprolint.toml")
    sim = tmp_path / "src" / "repro" / "sim"
    sim.mkdir(parents=True)
    node = sim / "node.py"
    node.write_text("import random\n\nJITTER = random.random()\n", encoding="utf-8")

    config = load_config(tmp_path / ".reprolint.toml")
    report = lint_paths([tmp_path / "src"], config)
    assert report.exit_code == 1
    assert [f.rule for f in report.findings] == ["DET001"]
    assert report.findings[0].path == "src/repro/sim/node.py"
