"""``.reprolint.toml`` loading, scoping, baselines, and the 3.9 fallback parser."""

import pytest

from repro.lint import (
    LintConfigError,
    config_from_dict,
    find_config,
    lint_paths,
    load_config,
    path_matches,
)
from repro.lint.config import _parse_toml_fallback

from .conftest import FIXTURES


def _det_config(**rule_table):
    return config_from_dict(
        {
            "lint": {
                "source_roots": ["."],
                "deterministic": ["detpkg"],
                **({"rules": {"DET001": rule_table}} if rule_table else {}),
            }
        },
        root=FIXTURES,
    )


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------


def test_fallback_parser_matches_tomllib_on_repo_config():
    text = (FIXTURES / ".reprolint.toml").read_text(encoding="utf-8")
    fallback = _parse_toml_fallback(text, "fixture")
    tomllib = pytest.importorskip("tomllib")
    assert fallback == tomllib.loads(text)


def test_fallback_parser_handles_multiline_arrays():
    data = _parse_toml_fallback(
        '[lint]\nexclude = [\n  "a",  # comment\n  "b",\n]\n', "test"
    )
    assert data == {"lint": {"exclude": ["a", "b"]}}


def test_fallback_parser_rejects_garbage():
    with pytest.raises(LintConfigError):
        _parse_toml_fallback("[lint]\nthis is not toml\n", "test")


def test_malformed_config_raises(tmp_path):
    path = tmp_path / ".reprolint.toml"
    path.write_text("[lint]\ndeterministic = 7\n", encoding="utf-8")
    with pytest.raises(LintConfigError):
        load_config(path)


def test_missing_config_file_raises(tmp_path):
    with pytest.raises(LintConfigError):
        load_config(tmp_path / ".reprolint.toml")


def test_find_config_walks_up(tmp_path):
    config = tmp_path / ".reprolint.toml"
    config.write_text("[lint]\n", encoding="utf-8")
    nested = tmp_path / "a" / "b"
    nested.mkdir(parents=True)
    assert find_config(nested) == config
    leaf = nested / "mod.py"
    leaf.write_text("x = 1\n", encoding="utf-8")
    assert find_config(leaf) == config


def test_path_matches_is_segment_wise():
    assert path_matches("src/repro/sim/node.py", "src/repro/sim")
    assert path_matches("src/repro/sim", "src/repro/sim")
    assert not path_matches("src/repro/simulator/x.py", "src/repro/sim")
    assert path_matches("anything/at/all.py", ".")


# ----------------------------------------------------------------------
# Scoping knobs
# ----------------------------------------------------------------------


def test_lint_exclude_skips_files(fixture_config):
    report = lint_paths([FIXTURES / "excluded"], fixture_config)
    assert report.files == []
    assert report.clean


def test_rule_disabled():
    config = _det_config(enabled=False)
    report = lint_paths([FIXTURES / "detpkg" / "det001_bad.py"], config)
    assert "DET001" not in {f.rule for f in report.findings}


def test_rule_include_overrides_default_scope():
    config = _det_config(include=["otherpkg"])
    # The explicit include replaces the deterministic default scope:
    # otherpkg is now flagged, detpkg no longer is.
    flagged = lint_paths([FIXTURES / "otherpkg"], config)
    assert any(f.rule == "DET001" for f in flagged.findings)
    skipped = lint_paths([FIXTURES / "detpkg" / "det001_bad.py"], config)
    assert not any(f.rule == "DET001" for f in skipped.findings)


def test_rule_exclude_wins_over_scope():
    config = _det_config(exclude=["detpkg/det001_bad.py"])
    report = lint_paths([FIXTURES / "detpkg" / "det001_bad.py"], config)
    assert not any(f.rule == "DET001" for f in report.findings)


def test_baseline_grandfathers_findings():
    config = _det_config()
    config.baseline = ["DET001:detpkg/det001_bad.py"]
    report = lint_paths([FIXTURES / "detpkg" / "det001_bad.py"], config)
    assert not any(f.rule == "DET001" for f in report.findings)
    # The baseline names one rule only; other rules still fire there.
    config.baseline = ["DET002:detpkg/det001_bad.py"]
    report = lint_paths([FIXTURES / "detpkg" / "det001_bad.py"], config)
    assert any(f.rule == "DET001" for f in report.findings)


def test_robustness_modules_in_det_scope():
    """The delivery/Byzantine modules sit inside the DET rules' scope.

    The deterministic scope is directory-based, so new files under
    ``sim/`` and ``faults/`` are covered automatically — this pins that
    down for the modules whose determinism the replay layer relies on.
    """
    from .conftest import REPO_ROOT

    config = load_config(REPO_ROOT / ".reprolint.toml")
    for relpath in (
        "src/repro/sim/delivery.py",
        "src/repro/faults/byzantine.py",
        "src/repro/baselines/ben_or.py",
        "src/repro/chaos/grammar.py",
    ):
        assert (REPO_ROOT / relpath).is_file(), relpath
        for rule in ("DET001", "DET002"):
            assert config.rule_scope(
                rule, relpath, config.deterministic
            ), f"{rule} must cover {relpath}"
