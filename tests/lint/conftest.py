"""Shared helpers for the lint test-suite."""

from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_paths, load_config

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def fixture_config() -> LintConfig:
    """The fixture tree's own ``.reprolint.toml``."""
    return load_config(FIXTURES / ".reprolint.toml")


@pytest.fixture
def lint_fixture(fixture_config):
    """Lint one fixture file (or subtree) under the fixture config."""

    def _lint(relpath: str):
        return lint_paths([FIXTURES / relpath], fixture_config)

    return _lint
