"""ASYNC001/002/003 event-loop hygiene rules over the asyncpkg fixtures."""

from repro.lint import lint_paths

from .conftest import FIXTURES


def rules_of(report):
    return [finding.rule for finding in report.findings]


def test_async001_flags_blocking_calls(lint_fixture):
    report = lint_fixture("asyncpkg/async001_bad.py")
    assert rules_of(report) == ["ASYNC001"] * 4
    messages = " | ".join(f.message for f in report.findings)
    assert "time.sleep" in messages
    assert "builtins.open" in messages
    assert "queue.get" in messages
    assert ".acquire" in messages
    # Each message names the offending coroutine.
    assert "async def sleeper" in messages


def test_async001_sanctioned_escapes_stay_quiet(lint_fixture):
    assert lint_fixture("asyncpkg/async001_good.py").clean


def test_async002_flags_lost_coroutines(lint_fixture):
    report = lint_fixture("asyncpkg/async002_bad.py")
    assert rules_of(report) == ["ASYNC002"] * 3
    messages = " | ".join(f.message for f in report.findings)
    assert "asyncio.create_task" in messages
    assert "neither awaited" in messages


def test_async002_awaited_stored_gathered_are_fine(lint_fixture):
    assert lint_fixture("asyncpkg/async002_good.py").clean


def test_async002_resolves_imported_coroutines(fixture_config):
    report = lint_paths(
        [
            FIXTURES / "asyncpkg" / "coros.py",
            FIXTURES / "asyncpkg" / "async002_cross.py",
        ],
        fixture_config,
    )
    assert rules_of(report) == ["ASYNC002"]
    finding = report.findings[0]
    assert finding.path == "asyncpkg/async002_cross.py"
    assert "asyncpkg.coros:acoro" in finding.message


def test_async003_flags_locks_held_across_await(lint_fixture):
    report = lint_fixture("asyncpkg/async003_bad.py")
    assert rules_of(report) == ["ASYNC003"] * 2
    messages = " | ".join(f.message for f in report.findings)
    assert "async def parked" in messages  # self._cond case
    assert "async def held_across" in messages  # module-global case


def test_async003_release_before_await_is_fine(lint_fixture):
    assert lint_fixture("asyncpkg/async003_good.py").clean
