"""Suppression pragma behaviour: justification required, scoping exact."""

from repro.lint import Suppressions


def test_justified_pragmas_suppress(lint_fixture):
    # Same-line and comment-line-above pragmas, both with justifications.
    assert lint_fixture("detpkg/pragma_justified.py").clean


def test_unjustified_pragma_suppresses_nothing(lint_fixture):
    report = lint_fixture("detpkg/pragma_unjustified.py")
    rules = sorted(finding.rule for finding in report.findings)
    # The DET001 finding survives AND the bad pragma is itself reported.
    assert rules == ["DET001", "LINT001"]
    lint001 = next(f for f in report.findings if f.rule == "LINT001")
    assert "justification" in lint001.message


def test_pragma_only_names_its_rules(lint_fixture):
    report = lint_fixture("detpkg/pragma_wrong_rule.py")
    # The DET001 finding survives (the pragma names IO001, not DET001)
    # and the mistargeted pragma is itself reported as stale.
    assert [f.rule for f in report.findings] == ["DET001", "LINT002"]


def test_file_level_pragma(lint_fixture):
    assert lint_fixture("detpkg/pragma_file_level.py").clean


def test_pragma_in_string_literal_is_inert():
    source = 'PRAGMA = "# repro: lint-ignore[DET001] not a real comment"\n'
    suppressions = Suppressions.from_source(source)
    assert not suppressions.lines
    assert not suppressions.file_rules
    assert not suppressions.bad


def test_multiline_comment_pragma_reaches_next_code_line():
    source = (
        "import time\n"
        "# repro: lint-ignore[DET001] reason line one\n"
        "# continuing the reason on line two\n"
        "NOW = time.time()\n"
    )
    suppressions = Suppressions.from_source(source)
    assert suppressions.suppressed("DET001", 4)
    assert not suppressions.suppressed("DET001", 1)


def test_pragma_may_name_several_rules():
    source = "x = 1  # repro: lint-ignore[DET001, IO001] two rules, one reason\n"
    suppressions = Suppressions.from_source(source)
    assert suppressions.suppressed("DET001", 1)
    assert suppressions.suppressed("IO001", 1)
    assert not suppressions.suppressed("PERF001", 1)


def test_lint001_cannot_be_pragmad_away():
    source = "x = 1  # repro: lint-ignore[LINT001] self-referential\n"
    suppressions = Suppressions.from_source(source)
    assert not suppressions.suppressed("LINT001", 1)
