"""Suppression pragma behaviour: justification required, scoping exact."""

from repro.lint import Suppressions


def test_justified_pragmas_suppress(lint_fixture):
    # Same-line and comment-line-above pragmas, both with justifications.
    assert lint_fixture("detpkg/pragma_justified.py").clean


def test_unjustified_pragma_suppresses_nothing(lint_fixture):
    report = lint_fixture("detpkg/pragma_unjustified.py")
    rules = sorted(finding.rule for finding in report.findings)
    # The DET001 finding survives AND the bad pragma is itself reported.
    assert rules == ["DET001", "LINT001"]
    lint001 = next(f for f in report.findings if f.rule == "LINT001")
    assert "justification" in lint001.message


def test_pragma_only_names_its_rules(lint_fixture):
    report = lint_fixture("detpkg/pragma_wrong_rule.py")
    # The DET001 finding survives (the pragma names IO001, not DET001)
    # and the mistargeted pragma is itself reported as stale.
    assert [f.rule for f in report.findings] == ["DET001", "LINT002"]


def test_file_level_pragma(lint_fixture):
    assert lint_fixture("detpkg/pragma_file_level.py").clean


def test_pragma_in_string_literal_is_inert():
    source = 'PRAGMA = "# repro: lint-ignore[DET001] not a real comment"\n'
    suppressions = Suppressions.from_source(source)
    assert not suppressions.lines
    assert not suppressions.file_rules
    assert not suppressions.bad


def test_multiline_comment_pragma_reaches_next_code_line():
    source = (
        "import time\n"
        "# repro: lint-ignore[DET001] reason line one\n"
        "# continuing the reason on line two\n"
        "NOW = time.time()\n"
    )
    suppressions = Suppressions.from_source(source)
    assert suppressions.suppressed("DET001", 4)
    assert not suppressions.suppressed("DET001", 1)


def test_pragma_may_name_several_rules():
    source = "x = 1  # repro: lint-ignore[DET001, IO001] two rules, one reason\n"
    suppressions = Suppressions.from_source(source)
    assert suppressions.suppressed("DET001", 1)
    assert suppressions.suppressed("IO001", 1)
    assert not suppressions.suppressed("PERF001", 1)


def test_lint001_cannot_be_pragmad_away():
    source = "x = 1  # repro: lint-ignore[LINT001] self-referential\n"
    suppressions = Suppressions.from_source(source)
    assert not suppressions.suppressed("LINT001", 1)


# -- LINT002: stale pragmas ---------------------------------------------


def test_stale_pragma_is_reported(lint_fixture):
    report = lint_fixture("detpkg/pragma_stale.py")
    assert [f.rule for f in report.findings] == ["LINT002"]
    finding = report.findings[0]
    assert finding.severity == "warning"
    assert "DET001" in finding.message
    assert "suppressed no finding" in finding.message


def test_used_pragma_is_not_reported_stale(lint_fixture):
    # pragma_justified.py suppresses real DET001 findings: no LINT002.
    assert lint_fixture("detpkg/pragma_justified.py").clean


def test_stale_file_level_pragma_names_the_whole_file(tmp_path):
    from repro.lint import config_from_dict, lint_paths

    target = tmp_path / "mod.py"
    target.write_text(
        "# repro: lint-ignore-file[IO001] nothing here prints\n"
        "x = 1\n",
        encoding="utf-8",
    )
    config = config_from_dict({"lint": {}}, root=tmp_path)
    report = lint_paths([tmp_path], config)
    assert [f.rule for f in report.findings] == ["LINT002"]
    assert "the whole file" in report.findings[0].message


def test_lint002_cannot_be_pragmad_away():
    source = "x = 1  # repro: lint-ignore[LINT002] self-referential\n"
    suppressions = Suppressions.from_source(source)
    assert not suppressions.suppressed("LINT002", 1)


def test_stale_tracks_declared_targets():
    source = (
        "import time\n"
        "# repro: lint-ignore[DET001] covers the next code line\n"
        "NOW = time.time()\n"
        "LATER = 2  # repro: lint-ignore[DET002] nothing set-iterates here\n"
    )
    suppressions = Suppressions.from_source(source)
    assert suppressions.suppressed("DET001", 3)  # marks the pragma used
    stale = suppressions.stale()
    assert len(stale) == 1
    declared, unused = stale[0]
    assert declared.line == 4 and declared.target == 4
    assert unused == ("DET002",)
