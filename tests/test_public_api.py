"""Public-API surface tests: __all__ must resolve, lazy exports must work."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.baselines",
    "repro.core",
    "repro.experiments",
    "repro.extensions",
    "repro.faults",
    "repro.lowerbound",
    "repro.sim",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} must declare __all__"
    for name in module.__all__:
        assert getattr(module, name, None) is not None, f"{package}.{name}"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_lazy_top_level_exports():
    import repro

    assert callable(repro.elect_leader)
    assert callable(repro.agree)
    with pytest.raises(AttributeError):
        repro.nonexistent_thing


def test_top_level_docstring_names_the_paper():
    import repro

    assert "Kumar" in repro.__doc__ and "Molla" in repro.__doc__


@pytest.mark.parametrize("package", PACKAGES)
def test_every_public_item_has_a_docstring(package):
    module = importlib.import_module(package)
    for name in module.__all__:
        item = getattr(module, name)
        if callable(item) or isinstance(item, type):
            assert item.__doc__, f"{package}.{name} lacks a docstring"
