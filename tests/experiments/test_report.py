"""Tests for the EXPERIMENTS.md generator (repro.experiments.report)."""

from repro.experiments.harness import Check, ExperimentReport
from repro.experiments.report import generate_report, render_markdown


def _report(experiment_id="E5", passed=True):
    return ExperimentReport(
        experiment_id=experiment_id,
        title="a title",
        paper_claim="a claim",
        rows=[{"x": 1, "y": 2.5}],
        checks=[Check("shape", passed, "details")],
        notes=["a note"],
    )


class TestRenderMarkdown:
    def test_contains_index_and_sections(self):
        text = render_markdown([_report()], quick=True, elapsed=1.0)
        assert "# EXPERIMENTS" in text
        assert "| E5 | a title | **PASS** (1/1 checks) |" in text
        assert "## E5: a title" in text
        assert "**Paper claim.** a claim" in text
        assert "- **PASS** shape — details" in text
        assert "- *note:* a note" in text

    def test_fail_marked(self):
        text = render_markdown([_report(passed=False)], quick=False, elapsed=1.0)
        assert "**FAIL**" in text

    def test_quick_flag_recorded(self):
        quick = render_markdown([_report()], quick=True, elapsed=1.0)
        full = render_markdown([_report()], quick=False, elapsed=1.0)
        assert "--quick" in quick
        assert "--quick" not in full


class TestGenerateReport:
    def test_only_filter(self):
        text = generate_report(quick=True, only=["E5"])
        assert "## E5" in text
        assert "## E1:" not in text
