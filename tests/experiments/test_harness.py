"""Unit tests for the experiment harness and registry."""

import pytest

from repro.experiments import (
    Check,
    Experiment,
    ExperimentReport,
    all_experiments,
    get_experiment,
)


class TestCheck:
    def test_str_marks_pass_and_fail(self):
        assert "PASS" in str(Check("x", True))
        assert "FAIL" in str(Check("x", False, "why"))


class TestExperimentReport:
    def _report(self, checks):
        return ExperimentReport(
            experiment_id="EX",
            title="t",
            paper_claim="c",
            rows=[{"a": 1}],
            checks=checks,
        )

    def test_passed_requires_all_checks(self):
        assert self._report([Check("a", True), Check("b", True)]).passed
        assert not self._report([Check("a", True), Check("b", False)]).passed

    def test_render_contains_table_and_checks(self):
        text = self._report([Check("shape", True, "ok")]).render()
        assert "EX: t" in text
        assert "paper claim: c" in text
        assert "shape" in text

    def test_notes_rendered(self):
        report = self._report([])
        report.notes.append("caveat")
        assert "note: caveat" in report.render()

    def test_to_dict_roundtrips_fields(self):
        report = self._report([Check("shape", True, "ok")])
        data = report.to_dict()
        assert data["experiment_id"] == "EX"
        assert data["passed"] is True
        assert data["rows"] == [{"a": 1}]
        assert data["checks"] == [
            {"name": "shape", "passed": True, "detail": "ok"}
        ]

    def test_to_dict_is_json_serialisable(self):
        import json

        report = self._report([Check("shape", False)])
        assert json.loads(json.dumps(report.to_dict()))["passed"] is False


class TestRegistry:
    def test_sixteen_experiments(self):
        experiments = all_experiments()
        assert [e.experiment_id for e in experiments] == [
            f"E{i}" for i in range(1, 17)
        ]

    def test_lookup_case_insensitive(self):
        assert get_experiment("e9").experiment_id == "E9"

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            get_experiment("E99")

    def test_every_experiment_has_claim(self):
        for experiment in all_experiments():
            assert experiment.paper_claim
            assert experiment.title


class TestQuickRuns:
    """Smoke-run the cheap experiments end-to-end in quick mode."""

    def test_e5_quick_passes(self):
        report = get_experiment("E5").run(quick=True)
        assert report.rows
        assert report.passed, report.render()

    def test_e7_quick_passes(self):
        report = get_experiment("E7").run(quick=True)
        assert report.rows
        assert report.passed, report.render()

    def test_e11_quick_passes(self):
        report = get_experiment("E11").run(quick=True)
        assert report.passed, report.render()
