"""Unit tests for the experiment harness and registry."""

import pytest

from repro.experiments import (
    Check,
    Experiment,
    ExperimentReport,
    all_experiments,
    get_experiment,
    run_experiments_resilient,
)


class TestCheck:
    def test_str_marks_pass_and_fail(self):
        assert "PASS" in str(Check("x", True))
        assert "FAIL" in str(Check("x", False, "why"))


class TestExperimentReport:
    def _report(self, checks):
        return ExperimentReport(
            experiment_id="EX",
            title="t",
            paper_claim="c",
            rows=[{"a": 1}],
            checks=checks,
        )

    def test_passed_requires_all_checks(self):
        assert self._report([Check("a", True), Check("b", True)]).passed
        assert not self._report([Check("a", True), Check("b", False)]).passed

    def test_render_contains_table_and_checks(self):
        text = self._report([Check("shape", True, "ok")]).render()
        assert "EX: t" in text
        assert "paper claim: c" in text
        assert "shape" in text

    def test_notes_rendered(self):
        report = self._report([])
        report.notes.append("caveat")
        assert "note: caveat" in report.render()

    def test_to_dict_roundtrips_fields(self):
        report = self._report([Check("shape", True, "ok")])
        data = report.to_dict()
        assert data["experiment_id"] == "EX"
        assert data["passed"] is True
        assert data["rows"] == [{"a": 1}]
        assert data["checks"] == [
            {"name": "shape", "passed": True, "detail": "ok"}
        ]

    def test_to_dict_is_json_serialisable(self):
        import json

        report = self._report([Check("shape", False)])
        assert json.loads(json.dumps(report.to_dict()))["passed"] is False

    def test_from_dict_round_trip(self):
        report = self._report([Check("shape", True, "ok"), Check("b", False)])
        report.notes.append("caveat")
        restored = ExperimentReport.from_dict(report.to_dict())
        assert restored.experiment_id == report.experiment_id
        assert restored.rows == report.rows
        assert restored.checks == report.checks
        assert restored.notes == report.notes
        assert restored.passed == report.passed
        assert "shape" in restored.render()


class TestResilientRunner:
    def _experiment(self, experiment_id="EX", fail=False, explode=False):
        def runner(quick):
            if explode:
                raise RuntimeError("experiment blew up")
            return ExperimentReport(
                experiment_id=experiment_id,
                title="t",
                paper_claim="c",
                rows=[{"quick": quick}],
                checks=[Check("shape", not fail)],
            )

        return Experiment(
            experiment_id=experiment_id, title="t", paper_claim="c", runner=runner
        )

    def test_batch_with_failures_yields_partial_reports(self):
        experiments = [self._experiment("A"), self._experiment("B", explode=True)]
        reports, counts = run_experiments_resilient(experiments, quick=True)
        assert counts == {"attempted": 2, "completed": 1, "failed": 1}
        good, bad = reports
        assert good.passed and good.rows == [{"quick": True}]
        assert not bad.passed
        assert "experiment blew up" in bad.checks[0].detail

    def test_resume_skips_completed_experiments(self, tmp_path):
        journal = str(tmp_path / "exp.jsonl")
        calls = []

        def runner(quick):
            calls.append(quick)
            return ExperimentReport(
                experiment_id="A", title="t", paper_claim="c",
                checks=[Check("shape", True)],
            )

        experiment = Experiment(
            experiment_id="A", title="t", paper_claim="c", runner=runner
        )
        run_experiments_resilient([experiment], journal_path=journal)
        assert calls == [False]
        reports, counts = run_experiments_resilient(
            [experiment], journal_path=journal, resume=True
        )
        assert calls == [False]  # not re-run
        assert counts["completed"] == 1
        assert reports[0].passed and reports[0].experiment_id == "A"


class TestRegistry:
    def test_seventeen_experiments(self):
        experiments = all_experiments()
        assert [e.experiment_id for e in experiments] == [
            f"E{i}" for i in range(1, 18)
        ]

    def test_lookup_case_insensitive(self):
        assert get_experiment("e9").experiment_id == "E9"

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            get_experiment("E99")

    def test_every_experiment_has_claim(self):
        for experiment in all_experiments():
            assert experiment.paper_claim
            assert experiment.title


class TestQuickRuns:
    """Smoke-run the cheap experiments end-to-end in quick mode."""

    def test_e5_quick_passes(self):
        report = get_experiment("E5").run(quick=True)
        assert report.rows
        assert report.passed, report.render()

    def test_e7_quick_passes(self):
        report = get_experiment("E7").run(quick=True)
        assert report.rows
        assert report.passed, report.render()

    def test_e11_quick_passes(self):
        report = get_experiment("E11").run(quick=True)
        assert report.passed, report.render()
