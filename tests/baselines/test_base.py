"""Unit tests for the baseline plumbing (repro.baselines.base)."""

from repro.baselines.base import (
    BaselineOutcome,
    evaluate_explicit_agreement,
    evaluate_implicit_agreement,
)
from repro.sim.metrics import Metrics


def outcome(decisions, inputs=(0, 1, 1, 1)):
    return BaselineOutcome(
        protocol="test",
        n=4,
        faulty=set(),
        crashed={},
        metrics=Metrics(),
        decisions=dict(decisions),
        inputs=list(inputs),
    )


class TestExplicitEvaluator:
    def test_everyone_decided_same_valid_bit(self):
        o = outcome({0: 1, 1: 1, 2: 1, 3: 1})
        assert evaluate_explicit_agreement(o, alive=[0, 1, 2, 3])

    def test_missing_decision_fails(self):
        o = outcome({0: 1, 1: 1, 2: 1})
        assert not evaluate_explicit_agreement(o, alive=[0, 1, 2, 3])

    def test_crashed_nodes_excused(self):
        o = outcome({0: 1, 1: 1, 2: 1})
        assert evaluate_explicit_agreement(o, alive=[0, 1, 2])

    def test_split_fails(self):
        o = outcome({0: 0, 1: 1})
        assert not evaluate_explicit_agreement(o, alive=[0, 1])

    def test_invalid_value_fails(self):
        o = outcome({0: 0, 1: 0}, inputs=(1, 1, 1, 1))
        assert not evaluate_explicit_agreement(o, alive=[0, 1])


class TestImplicitEvaluator:
    def test_one_decider_suffices(self):
        o = outcome({0: 1})
        assert evaluate_implicit_agreement(o, alive=[0, 1, 2, 3])

    def test_nobody_decided_fails(self):
        o = outcome({})
        assert not evaluate_implicit_agreement(o, alive=[0, 1, 2, 3])

    def test_contradiction_fails(self):
        o = outcome({0: 0, 3: 1})
        assert not evaluate_implicit_agreement(o, alive=[0, 1, 2, 3])


class TestOutcome:
    def test_summary_keys(self):
        summary = outcome({}).summary()
        assert {"protocol", "n", "faulty", "success", "messages", "rounds", "crashes"} == set(summary)

    def test_message_and_round_proxies(self):
        o = outcome({})
        o.metrics.messages_sent = 12
        o.metrics.rounds = 7
        assert o.messages == 12
        assert o.rounds == 7
