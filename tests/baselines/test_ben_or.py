"""Ben-Or baseline tests (repro.baselines.ben_or): correctness under
crashes and bounded delay, horizon arithmetic, early quiescence, and the
unauthenticated-certificate Byzantine weakness."""

import pytest

from repro.baselines.ben_or import (
    BOT,
    DEFAULT_MAX_PHASES,
    BenOrDecideForger,
    BenOrProtocol,
    ben_or_consensus,
    ben_or_horizon,
)
from repro.faults.byzantine import ByzantinePlan
from repro.faults.strategies import RandomCrash
from repro.sim.delivery import TargetedDelay, UniformDelay


def _inputs(n, pattern="mixed"):
    if pattern == "all1":
        return [1] * n
    if pattern == "all0":
        return [0] * n
    return [u % 2 for u in range(n)]


class TestHorizon:
    def test_synchronous_horizon(self):
        assert ben_or_horizon() == 2 * DEFAULT_MAX_PHASES + 2

    def test_delay_stretches_by_step(self):
        for delta in (1, 3):
            step = 1 + delta
            assert (
                ben_or_horizon(delta)
                == 2 * step * DEFAULT_MAX_PHASES + step + 1
            )

    def test_phase_cap_scales(self):
        assert ben_or_horizon(0, max_phases=5) == 12


class TestFaultFree:
    def test_unanimous_one_decides_one(self):
        outcome = ben_or_consensus(n=16, inputs=_inputs(16, "all1"), seed=1)
        assert outcome.success
        assert set(outcome.decisions.values()) == {1}
        assert len(outcome.decisions) == 16

    def test_unanimous_zero_decides_zero(self):
        outcome = ben_or_consensus(n=16, inputs=_inputs(16, "all0"), seed=1)
        assert outcome.success
        assert set(outcome.decisions.values()) == {0}

    def test_unanimous_decides_in_one_phase(self):
        # All reports agree, so phase 1 proposes and decides: two stages
        # of broadcast plus one certificate round.
        outcome = ben_or_consensus(n=16, inputs=_inputs(16, "all1"), seed=1)
        assert outcome.rounds <= 5
        assert outcome.rounds < outcome.horizon

    def test_mixed_inputs_decide_valid_bit(self):
        for seed in range(5):
            outcome = ben_or_consensus(n=16, inputs=_inputs(16), seed=seed)
            assert outcome.success
            assert set(outcome.decisions.values()) <= {0, 1}

    def test_deterministic_replay(self):
        a = ben_or_consensus(n=16, inputs=_inputs(16), seed=9)
        b = ben_or_consensus(n=16, inputs=_inputs(16), seed=9)
        assert a.decisions == b.decisions
        assert a.messages == b.messages
        assert a.rounds == b.rounds

    def test_input_validation(self):
        with pytest.raises(ValueError, match="inputs"):
            ben_or_consensus(n=8, inputs=[1, 0], seed=0)
        with pytest.raises(ValueError, match="input bit"):
            BenOrProtocol(0, 8, 2, 3)


class TestCrashTolerance:
    def test_decides_under_max_crashes(self):
        n = 32
        budget = (n - 1) // 2
        for seed in range(6):
            outcome = ben_or_consensus(
                n=n,
                inputs=_inputs(n),
                seed=seed,
                adversary=RandomCrash(horizon=ben_or_horizon()),
                faulty_count=budget,
            )
            assert outcome.success, (seed, outcome.summary())

    def test_crashed_nodes_excluded_from_decisions(self):
        outcome = ben_or_consensus(
            n=16,
            inputs=_inputs(16),
            seed=2,
            adversary=RandomCrash(horizon=4),
            faulty_count=7,
        )
        assert not set(outcome.decisions) & set(outcome.crashed)


class TestDelayTolerance:
    @pytest.mark.parametrize("delta", [1, 3])
    def test_decides_under_uniform_delay(self, delta):
        n = 16
        for seed in range(4):
            outcome = ben_or_consensus(
                n=n,
                inputs=_inputs(n),
                seed=seed,
                delivery=UniformDelay(delta, salt=seed),
            )
            assert outcome.success, (delta, seed, outcome.summary())
            assert outcome.max_delay == delta
            latencies = set(outcome.metrics.delivery_latency)
            assert latencies <= set(range(1, delta + 2))

    def test_decides_under_delay_and_crashes(self):
        n = 24
        budget = (n - 1) // 2
        delta = 2
        for seed in range(4):
            outcome = ben_or_consensus(
                n=n,
                inputs=_inputs(n),
                seed=seed,
                adversary=RandomCrash(horizon=ben_or_horizon(delta)),
                faulty_count=budget,
                delivery=UniformDelay(delta, salt=seed),
            )
            assert outcome.success, (seed, outcome.summary())

    def test_targeted_victim_still_decides(self):
        # Lagging one node's incoming links slows it, not the protocol.
        outcome = ben_or_consensus(
            n=16,
            inputs=_inputs(16, "all1"),
            seed=3,
            delivery=TargetedDelay({1: 2}),
        )
        assert outcome.success
        assert outcome.decisions[1] == 1

    def test_quiesces_well_before_stretched_horizon(self):
        # Decided nodes halt; the engine must fast-forward out instead of
        # burning the full Δ-stretched timetable (the halted-node and
        # duplicate-wake engine regressions both showed up here).
        delta = 3
        outcome = ben_or_consensus(
            n=16,
            inputs=_inputs(16),
            seed=4,
            delivery=UniformDelay(delta, salt=4),
        )
        assert outcome.success
        assert outcome.rounds < ben_or_horizon(delta) // 2


class TestByzantineWeakness:
    def test_forged_certificate_collapses_validity(self):
        # All honest inputs are 1; one forged decide-0 certificate makes
        # every honest node adopt 0 — agreement holds, validity dies.
        n = 16
        plan = ByzantinePlan(modes={5: "zero_forger"})
        outcome = ben_or_consensus(
            n=n, inputs=_inputs(n, "all1"), seed=1, byzantine=plan
        )
        honest = [u for u in range(n) if u != 5 and u not in outcome.crashed]
        assert all(outcome.decisions.get(u) == 0 for u in honest)
        assert not outcome.success

    def test_forger_counts_against_budget(self):
        plan = ByzantinePlan(modes={3: "zero_forger"})
        outcome = ben_or_consensus(
            n=16, inputs=_inputs(16, "all1"), seed=1, byzantine=plan
        )
        assert 3 in outcome.faulty
        assert 3 not in outcome.crashed

    def test_forger_protocol_shape(self):
        forger = BenOrDecideForger(4, 16)
        assert forger.decided == 0

    def test_omission_mode_wraps_ben_or(self):
        plan = ByzantinePlan(
            modes={2: "omission"}, omission_fraction=0.9, salt=5
        )
        outcome = ben_or_consensus(
            n=16, inputs=_inputs(16, "all1"), seed=6, byzantine=plan
        )
        # A mostly-mute node cannot stop the others (f < n/2 tolerance).
        honest = [u for u in range(16) if u != 2]
        assert all(outcome.decisions.get(u) == 1 for u in honest)


class TestProtocolInternals:
    def test_bot_is_not_a_bit(self):
        assert BOT not in (0, 1)

    def test_step_tracks_delay(self):
        assert BenOrProtocol(0, 8, 1, 3).step == 1
        assert BenOrProtocol(0, 8, 1, 3, max_delay=4).step == 5
