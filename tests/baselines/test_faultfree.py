"""Tests for the fault-free baselines ([21] / [23] style)."""

from repro.baselines import augustine_agree, kutten_elect_leader
from repro.core import make_inputs
from repro.rng import seed_sequence


class TestKuttenLeaderElection:
    def test_elects_unique_leader_whp(self):
        ok = sum(kutten_elect_leader(256, seed=s).success for s in seed_sequence(1, 10))
        assert ok >= 9

    def test_two_rounds_suffice(self):
        outcome = kutten_elect_leader(256, seed=2)
        assert outcome.metrics.rounds_executed <= 4

    def test_sublinear_messages_at_scale(self):
        outcome = kutten_elect_leader(4096, seed=3)
        assert outcome.success
        assert outcome.messages < 4096 * 12  # far below n^2; Õ(sqrt n) regime

    def test_message_growth_is_sublinear(self):
        small = kutten_elect_leader(256, seed=4).messages
        large = kutten_elect_leader(1024, seed=4).messages
        assert large < 4 * small  # 4x n -> less than 4x messages

    def test_no_faults_in_run(self):
        outcome = kutten_elect_leader(128, seed=5)
        assert outcome.faulty == set()
        assert outcome.crashed == {}

    def test_deterministic_by_seed(self):
        a = kutten_elect_leader(128, seed=6)
        b = kutten_elect_leader(128, seed=6)
        assert a.messages == b.messages
        assert a.elected == b.elected


class TestAugustineAgreement:
    def test_agrees_whp(self):
        ok = 0
        for s in seed_sequence(7, 10):
            inputs = make_inputs(256, "mixed", s)
            ok += augustine_agree(256, inputs, seed=s).success
        assert ok >= 9

    def test_zero_biased_decision(self):
        inputs = [0] + [1] * 255
        outcome = augustine_agree(256, inputs, seed=8)
        decided = set(outcome.decisions.values())
        assert decided <= {0, 1}
        assert outcome.success

    def test_all_one_decides_one(self):
        outcome = augustine_agree(128, [1] * 128, seed=9)
        assert outcome.success
        assert set(outcome.decisions.values()) == {1}

    def test_all_zero_decides_zero(self):
        outcome = augustine_agree(128, [0] * 128, seed=10)
        assert outcome.success
        assert set(outcome.decisions.values()) == {0}

    def test_only_candidates_decide(self):
        outcome = augustine_agree(256, [1] * 256, seed=11)
        assert 0 < len(outcome.decisions) < 256

    def test_input_length_validated(self):
        import pytest

        with pytest.raises(ValueError):
            augustine_agree(128, [0, 1], seed=12)
