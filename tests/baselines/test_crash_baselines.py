"""Tests for the crash-fault Table I baselines."""

import pytest

from repro.baselines import (
    committee_agreement,
    flooding_consensus,
    gossip_consensus,
    rotating_coordinator_consensus,
)
from repro.core import make_inputs
from repro.faults.strategies import EagerCrash, RandomCrash, StaggeredCrash
from repro.rng import seed_sequence

N = 128
F = N // 2 - 1


def _inputs(seed, pattern="mixed"):
    return make_inputs(N, pattern, seed)


class TestCommitteeAgreement:
    def test_succeeds_under_random_crashes(self):
        ok = sum(
            committee_agreement(
                N, _inputs(s), seed=s, adversary=RandomCrash(horizon=6), faulty_count=F
            ).success
            for s in seed_sequence(1, 8)
        )
        assert ok >= 7

    def test_explicit_everyone_decides(self):
        outcome = committee_agreement(N, _inputs(2), seed=2)
        assert len(outcome.decisions) == N

    def test_messages_are_n_log_n_scale(self):
        small = committee_agreement(128, make_inputs(128, "mixed", 3), seed=3).messages
        large = committee_agreement(512, make_inputs(512, "mixed", 3), seed=3).messages
        # Linear-ish growth: 4x n -> between 3.5x and 8x messages.
        assert 3.5 * small <= large <= 8 * small

    def test_all_zero_valid(self):
        outcome = committee_agreement(N, [0] * N, seed=4)
        assert outcome.success
        assert set(outcome.decisions.values()) == {0}

    def test_input_length_validated(self):
        with pytest.raises(ValueError):
            committee_agreement(N, [0, 1], seed=5)


class TestGossipConsensus:
    def test_succeeds_under_random_crashes(self):
        ok = sum(
            gossip_consensus(
                N, _inputs(s), seed=s, adversary=RandomCrash(horizon=6), faulty_count=F
            ).success
            for s in seed_sequence(7, 8)
        )
        assert ok >= 7

    def test_decides_minimum_whp(self):
        outcome = gossip_consensus(N, _inputs(8), seed=8)
        assert outcome.success
        assert set(outcome.decisions.values()) == {min(outcome.inputs)}

    def test_rounds_logarithmic(self):
        outcome = gossip_consensus(1024, make_inputs(1024, "mixed", 9), seed=9)
        assert outcome.metrics.rounds_executed <= 40

    def test_all_one_stays_one(self):
        outcome = gossip_consensus(N, [1] * N, seed=10)
        assert set(outcome.decisions.values()) == {1}


class TestFloodingConsensus:
    def test_correct_under_every_portfolio_adversary(self):
        for adversary in (EagerCrash(), RandomCrash(horizon=20), StaggeredCrash(period=2)):
            outcome = flooding_consensus(
                64, make_inputs(64, "mixed", 11), seed=11,
                adversary=adversary, faulty_count=31,
            )
            assert outcome.success, adversary.name()

    def test_quadratic_messages(self):
        outcome = flooding_consensus(64, make_inputs(64, "mixed", 12), seed=12)
        assert outcome.messages >= 64 * 63  # at least one full broadcast wave

    def test_runs_f_plus_one_rounds(self):
        outcome = flooding_consensus(
            64, make_inputs(64, "mixed", 13), seed=13, faulty_count=10
        )
        assert outcome.horizon == 13  # f+1 phases + 2 tail
        assert outcome.rounds <= 13

    def test_deterministic_success_fault_free(self):
        outcome = flooding_consensus(32, [1] * 16 + [0] * 16, seed=14)
        assert outcome.success
        assert set(outcome.decisions.values()) == {0}


class TestRotatingCoordinator:
    def test_correct_under_every_portfolio_adversary(self):
        for adversary in (EagerCrash(), RandomCrash(horizon=20), StaggeredCrash(period=2)):
            outcome = rotating_coordinator_consensus(
                64, make_inputs(64, "mixed", 15), seed=15,
                adversary=adversary, faulty_count=31,
            )
            assert outcome.success, adversary.name()

    def test_adopts_first_coordinator_fault_free(self):
        inputs = [1] * 64
        inputs[0] = 0  # node 0 coordinates phase 1
        outcome = rotating_coordinator_consensus(64, inputs, seed=16)
        assert set(outcome.decisions.values()) == {0}

    def test_messages_linear_in_f(self):
        small = rotating_coordinator_consensus(
            64, make_inputs(64, "mixed", 17), seed=17, faulty_count=8
        ).messages
        large = rotating_coordinator_consensus(
            64, make_inputs(64, "mixed", 17), seed=17, faulty_count=32
        ).messages
        assert large > 2 * small

    def test_phases_capped_at_n(self):
        outcome = rotating_coordinator_consensus(
            32, make_inputs(32, "mixed", 18), seed=18, faulty_count=31
        )
        assert outcome.rounds <= 34
