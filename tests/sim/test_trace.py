"""Unit tests for execution traces (repro.sim.trace)."""

from repro.sim.trace import Trace, TraceEvent


def _sample_trace() -> Trace:
    trace = Trace()
    trace.record(TraceEvent(round=1, kind="send", src=0, dst=1, message_kind="X"))
    trace.record(TraceEvent(round=1, kind="deliver", src=0, dst=1, message_kind="X"))
    trace.record(TraceEvent(round=1, kind="send", src=2, dst=3, message_kind="X"))
    trace.record(TraceEvent(round=1, kind="drop", src=2, dst=3, message_kind="X"))
    trace.record(TraceEvent(round=2, kind="crash", src=2))
    return trace


class TestTrace:
    def test_counts(self):
        trace = _sample_trace()
        assert trace.message_count() == 2
        assert len(list(trace.deliveries())) == 1
        assert len(list(trace.crashes())) == 1
        assert len(trace) == 5

    def test_delivered_edges(self):
        trace = _sample_trace()
        assert list(trace.delivered_edges()) == [(0, 1, 1)]

    def test_communicating_nodes_ignores_drops(self):
        trace = _sample_trace()
        assert trace.communicating_nodes() == {0, 1}

    def test_disabled_trace_records_nothing(self):
        trace = Trace(enabled=False)
        trace.record(TraceEvent(round=1, kind="send", src=0, dst=1))
        assert len(trace) == 0

    def test_empty_trace_is_falsy_but_usable(self):
        # Regression guard: Trace defines __len__, so `if trace:` is False
        # when empty — engine code must test `is not None` instead.
        trace = Trace()
        assert not trace
        assert trace is not None
        assert trace.message_count() == 0
