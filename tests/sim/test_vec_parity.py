"""Cross-backend parity gate: ``vec`` must be Metrics-identical to ``ref``.

The vectorized engine's contract (docs/VEC.md) is *exact* equivalence:
for every supported configuration, the same seed must produce identical
``Metrics`` (message totals, per-round series, per-kind counters,
per-node senders, latency histogram), identical crash sets, and
identical per-node outcomes.  These tests drive both engines over a
seeded grid and compare everything; any drift — one message, one bit,
one round — is a failure, not a tolerance.

Also here: the fallback contract (unsupported adversaries silently use
the reference engine, same results), the conservation identity on vec
runs, process-pool parity at ``jobs=4``, and the numpy-missing error
path.
"""

from __future__ import annotations

import pytest

from repro.baselines.flooding import FloodingConsensusProtocol, flooding_consensus
from repro.core import agree, elect_leader
from repro.core.agreement import AgreementProtocol
from repro.core.leader_election import LeaderElectionProtocol
from repro.core.runner import _resolve_adversary, make_inputs
from repro.core.schedule import AgreementSchedule, LeaderElectionSchedule
from repro.errors import BackendUnavailable, ConfigurationError, VecUnsupported
from repro.optdeps import have_numpy
from repro.params import CongestBudget, Params
from repro.sim.network import Network
from repro.types import Knowledge

pytestmark = pytest.mark.skipif(not have_numpy(), reason="numpy not installed")

ADVERSARIES = ("none", "eager", "lazy", "random", "staggered", "split")

#: The acceptance canary (ISSUE 7): this exact count on both backends.
CANARY = dict(n=512, alpha=0.5, seed=2)
CANARY_MESSAGES = 411687


def _assert_runs_match(ref, vec):
    """Full Metrics + fault-set equality, plus conservation on the vec run."""
    rm, vm = ref.metrics, vec.metrics
    assert rm.per_round_messages == vm.per_round_messages
    assert dict(rm.per_kind_messages) == dict(vm.per_kind_messages)
    assert rm.per_node_sent == vm.per_node_sent
    assert dict(rm.delivery_latency) == dict(vm.delivery_latency)
    assert rm == vm  # every remaining scalar field too
    assert ref.crashed == vec.crashed
    assert ref.faulty == vec.faulty
    # Conservation: every sent message is delivered, dropped, or expired.
    assert vm.messages_sent == (
        vm.messages_delivered + vm.messages_dropped + vm.messages_expired
    )


# ----------------------------------------------------------------------
# Leader election
# ----------------------------------------------------------------------


def _election_pair(n, alpha, seed, advname):
    from repro.sim.vec import ensure_vec_supported, run_election_vec

    params = Params(n=n, alpha=alpha)
    schedule = LeaderElectionSchedule.from_params(params)
    total = schedule.last_round
    adv = _resolve_adversary(advname, total)
    ensure_vec_supported(adv)
    vec = run_election_vec(params, schedule, seed, adv, params.max_faulty, total)
    ref = Network(
        n,
        lambda u: LeaderElectionProtocol(u, params, schedule),
        seed=seed,
        adversary=_resolve_adversary(advname, total),
        max_faulty=params.max_faulty,
        congest=CongestBudget(n),
    ).run(total)
    return ref, vec


@pytest.mark.parametrize("n", [16, 64, 256])
@pytest.mark.parametrize("advname", ADVERSARIES)
def test_election_parity(n, advname):
    try:
        ref, vec = _election_pair(n, 0.5, seed=1, advname=advname)
    except VecUnsupported as exc:
        pytest.skip(f"config not vectorized: {exc}")
    _assert_runs_match(ref, vec)
    for u in range(n):
        rp, vp = ref.protocol(u), vec.protocol(u)
        assert rp.rank == vp.rank
        assert rp.is_candidate == vp.is_candidate
        assert rp.state == vp.state
        assert rp.leader_rank == vp.leader_rank


@pytest.mark.parametrize("seed", [0, 2, 3])
def test_election_parity_across_seeds(seed):
    ref, vec = _election_pair(64, 0.5, seed=seed, advname="random")
    _assert_runs_match(ref, vec)


# ----------------------------------------------------------------------
# Agreement
# ----------------------------------------------------------------------


def _agreement_pair(n, alpha, seed, advname, pattern):
    from repro.sim.vec import ensure_vec_supported, run_agreement_vec

    params = Params(n=n, alpha=alpha)
    schedule = AgreementSchedule.from_params(params)
    total = schedule.last_round
    adv = _resolve_adversary(advname, total)
    bits = make_inputs(n, pattern, seed)
    ensure_vec_supported(adv)
    vec = run_agreement_vec(
        params, schedule, seed, adv, params.max_faulty, bits, total
    )
    ref = Network(
        n,
        lambda u: AgreementProtocol(u, params, schedule, bits[u]),
        seed=seed,
        adversary=_resolve_adversary(advname, total),
        max_faulty=params.max_faulty,
        inputs=bits,
        congest=CongestBudget(n),
    ).run(total)
    return ref, vec


@pytest.mark.parametrize("n", [16, 64, 256])
@pytest.mark.parametrize("advname", ADVERSARIES)
def test_agreement_parity(n, advname):
    try:
        ref, vec = _agreement_pair(n, 0.5, seed=3, advname=advname, pattern="mixed")
    except VecUnsupported as exc:
        pytest.skip(f"config not vectorized: {exc}")
    _assert_runs_match(ref, vec)
    for u in range(n):
        rp, vp = ref.protocol(u), vec.protocol(u)
        assert rp.is_candidate == vp.is_candidate
        assert rp.decision == vp.decision


@pytest.mark.parametrize("pattern", ["single0", "all1", "all0"])
def test_agreement_parity_input_patterns(pattern):
    ref, vec = _agreement_pair(64, 0.5, seed=7, advname="staggered", pattern=pattern)
    _assert_runs_match(ref, vec)
    for u in range(64):
        assert ref.protocol(u).decision == vec.protocol(u).decision


# ----------------------------------------------------------------------
# Flooding baseline
# ----------------------------------------------------------------------


def _flooding_pair(n, seed, advname):
    from repro.sim.vec import ensure_vec_supported, run_flooding_vec

    f = n // 3
    bits = make_inputs(n, "mixed", seed)
    adv = _resolve_adversary(advname, f + 3)
    ensure_vec_supported(adv)
    vec = run_flooding_vec(n, bits, seed, adv, f, f + 1)
    ref = Network(
        n,
        lambda u: FloodingConsensusProtocol(u, n, bits[u], f + 1),
        seed=seed,
        adversary=_resolve_adversary(advname, f + 3),
        max_faulty=f,
        inputs=bits,
        knowledge=Knowledge.KT1,
    ).run(f + 3)
    return ref, vec


@pytest.mark.parametrize("n", [16, 64, 200])
@pytest.mark.parametrize("advname", ["none", "eager", "random", "staggered"])
def test_flooding_parity(n, advname):
    try:
        ref, vec = _flooding_pair(n, seed=5, advname=advname)
    except VecUnsupported as exc:
        pytest.skip(f"config not vectorized: {exc}")
    _assert_runs_match(ref, vec)
    for u in ref.alive:
        assert ref.protocol(u).decided == vec.protocol(u).decided


# ----------------------------------------------------------------------
# API level: the canary, fallback, and error paths
# ----------------------------------------------------------------------


def test_canary_both_backends():
    """The acceptance canary: identical headline count on ref and vec."""
    ref = elect_leader(**CANARY, backend="ref")
    vec = elect_leader(**CANARY, backend="vec")
    assert ref.messages == CANARY_MESSAGES
    assert vec.messages == CANARY_MESSAGES
    assert ref.success and vec.success
    assert ref.elected_alive == vec.elected_alive
    assert ref.beliefs == vec.beliefs


def test_api_agreement_backend_parity():
    ref = agree(n=96, alpha=0.5, inputs="mixed", seed=11, adversary="staggered")
    vec = agree(
        n=96, alpha=0.5, inputs="mixed", seed=11, adversary="staggered", backend="vec"
    )
    assert ref.messages == vec.messages
    assert ref.decisions == vec.decisions
    assert ref.success == vec.success


def test_api_flooding_backend_parity():
    inputs = make_inputs(80, "mixed", 9)
    ref = flooding_consensus(80, inputs, seed=9, adversary=None, faulty_count=20)
    vec = flooding_consensus(
        80, inputs, seed=9, adversary=None, faulty_count=20, backend="vec"
    )
    assert ref.metrics == vec.metrics
    assert ref.decisions == vec.decisions
    assert ref.success and vec.success


def test_unsupported_adversary_falls_back_to_ref():
    """An adversary outside VEC_ADVERSARIES silently uses the ref engine."""
    ref = elect_leader(n=48, alpha=0.5, seed=4, adversary="adaptive")
    vec = elect_leader(n=48, alpha=0.5, seed=4, adversary="adaptive", backend="vec")
    assert ref.messages == vec.messages
    assert ref.metrics == vec.metrics
    assert ref.elected_alive == vec.elected_alive


def test_unknown_backend_rejected():
    with pytest.raises(ConfigurationError):
        elect_leader(n=16, alpha=0.5, seed=0, backend="cuda")
    with pytest.raises(ConfigurationError):
        flooding_consensus(8, [0] * 8, backend="cuda")


def test_missing_numpy_raises_backend_unavailable(monkeypatch):
    """Without numpy, backend='vec' fails loudly, not with an ImportError."""
    from repro import optdeps

    monkeypatch.setattr(optdeps, "_NUMPY", None)
    monkeypatch.setattr(optdeps, "_NUMPY_ERROR", "No module named 'numpy'")
    with pytest.raises(BackendUnavailable) as excinfo:
        optdeps.require_numpy("the vectorized backend")
    assert "repro[perf]" in str(excinfo.value)


# ----------------------------------------------------------------------
# Pool parity: jobs=4 workers produce the same rows as serial ref
# ----------------------------------------------------------------------


def test_sweep_pool_parity_jobs4():
    from repro.analysis.sweeps import sweep
    from repro.parallel import election_trial

    grid = {"n": [16, 32], "alpha": [0.5]}
    serial_ref = sweep(election_trial, grid, trials=2, master_seed=13, jobs=1)
    pooled_vec = sweep(
        election_trial, grid, trials=2, master_seed=13, jobs=4, backend="vec"
    )
    assert serial_ref == pooled_vec
