"""Engine semantics tests (repro.sim.network): synchrony, CONGEST FIFO,
crash handling, fast-forward, budgets, determinism."""

import pytest

from repro.errors import BudgetExceeded, CongestViolation, SimulationError
from repro.faults.adversary import Adversary, CrashOrder
from repro.faults.strategies import EagerCrash, LazyCrash
from repro.params import CongestBudget
from repro.sim import Message, Network, Protocol
from repro.types import Knowledge


class Chatter(Protocol):
    """Node 0 sends `count` messages to node 1 in round 1; others idle."""

    def __init__(self, node_id, count=1, kind="X"):
        self.node_id = node_id
        self.count = count
        self.kind = kind
        self.received = []

    def on_round(self, ctx, inbox):
        for delivery in inbox:
            self.received.append((ctx.round, delivery.kind, delivery.fields))
        if self.node_id == 0 and ctx.round == 1:
            ctx.learn(1)
            for i in range(self.count):
                ctx.send(1, Message(self.kind, (i,)))
        ctx.idle()


class TestSynchrony:
    def test_message_arrives_next_round(self):
        network = Network(4, lambda u: Chatter(u))
        result = network.run(5)
        receiver = result.protocol(1)
        assert receiver.received == [(2, "X", (0,))]

    def test_congest_fifo_one_message_per_edge_per_round(self):
        # 3 messages on the same edge take 3 consecutive rounds.
        network = Network(4, lambda u: Chatter(u, count=3))
        result = network.run(6)
        receiver = result.protocol(1)
        assert [r for (r, _, _) in receiver.received] == [2, 3, 4]
        assert [f for (_, _, f) in receiver.received] == [(0,), (1,), (2,)]

    def test_distinct_edges_transmit_in_parallel(self):
        class Fanout(Protocol):
            def __init__(self, u):
                self.u = u
                self.arrivals = []

            def on_round(self, ctx, inbox):
                self.arrivals.extend(ctx.round for _ in inbox)
                if self.u == 0 and ctx.round == 1:
                    for dst in (1, 2, 3):
                        ctx.learn(dst)
                        ctx.send(dst, Message("X"))
                ctx.idle()

        network = Network(4, Fanout)
        result = network.run(4)
        for dst in (1, 2, 3):
            assert result.protocol(dst).arrivals == [2]

    def test_max_round_messages_respects_congest(self):
        network = Network(4, lambda u: Chatter(u, count=5))
        result = network.run(8)
        # One edge in use: at most 1 message per round hits the wire.
        assert result.metrics.max_round_messages == 1


class TestCongestEnforcement:
    def test_oversized_message_rejected(self):
        class Oversized(Protocol):
            def __init__(self, u):
                self.u = u

            def on_round(self, ctx, inbox):
                if self.u == 0:
                    ctx.learn(1)
                    ctx.send(1, Message("X", (2 ** 400,)))
                ctx.idle()

        network = Network(8, Oversized)
        with pytest.raises(CongestViolation):
            network.run(2)

    def test_enforcement_can_be_disabled(self):
        class Oversized(Protocol):
            def __init__(self, u):
                self.u = u

            def on_round(self, ctx, inbox):
                if self.u == 0 and ctx.round == 1:
                    ctx.learn(1)
                    ctx.send(1, Message("X", (2 ** 400,)))
                ctx.idle()

        network = Network(8, Oversized, enforce_congest=False)
        assert network.run(3).metrics.messages_sent == 1


class TestCrashSemantics:
    def test_adversary_cannot_crash_nonfaulty(self):
        class BadAdversary(Adversary):
            def select_faulty(self, n, max_faulty, rng, inputs=None):
                return {0}

            def plan_round(self, view, rng):
                return {1: CrashOrder.drop_all()}  # 1 is not faulty

        network = Network(4, lambda u: Chatter(u), adversary=BadAdversary(), max_faulty=1)
        with pytest.raises(SimulationError):
            network.run(3)

    def test_adversary_budget_enforced(self):
        class Greedy(Adversary):
            def select_faulty(self, n, max_faulty, rng, inputs=None):
                return set(range(n))  # exceeds budget

        with pytest.raises(SimulationError):
            Network(4, lambda u: Chatter(u), adversary=Greedy(), max_faulty=1)

    def test_drop_all_loses_crash_round_messages(self):
        class CrashSender(Adversary):
            def select_faulty(self, n, max_faulty, rng, inputs=None):
                return {0}

            def plan_round(self, view, rng):
                if view.round == 1:
                    return {0: CrashOrder.drop_all()}
                return {}

        network = Network(
            4, lambda u: Chatter(u, count=1), adversary=CrashSender(), max_faulty=1
        )
        result = network.run(4)
        assert result.metrics.messages_sent == 1
        assert result.metrics.messages_dropped == 1
        assert result.metrics.messages_delivered == 0
        assert result.protocol(1).received == []
        assert result.crashed == {0: 1}

    def test_keep_all_crash_delivers_crash_round_messages(self):
        class CrashSender(Adversary):
            def select_faulty(self, n, max_faulty, rng, inputs=None):
                return {0}

            def plan_round(self, view, rng):
                if view.round == 1:
                    return {0: CrashOrder.keep_all()}
                return {}

        network = Network(
            4, lambda u: Chatter(u, count=1), adversary=CrashSender(), max_faulty=1
        )
        result = network.run(4)
        assert result.protocol(1).received == [(2, "X", (0,))]
        assert result.crashed == {0: 1}

    def test_crashed_node_queue_is_discarded(self):
        # 3 queued messages, crash in round 1 with keep_all: only the first
        # (already on the wire) survives; the queued remainder dies.
        class CrashSender(Adversary):
            def select_faulty(self, n, max_faulty, rng, inputs=None):
                return {0}

            def plan_round(self, view, rng):
                if view.round == 1:
                    return {0: CrashOrder.keep_all()}
                return {}

        network = Network(
            4, lambda u: Chatter(u, count=3), adversary=CrashSender(), max_faulty=1
        )
        result = network.run(6)
        assert [f for (_, _, f) in result.protocol(1).received] == [(0,)]

    def test_keep_destinations_partitions_receivers(self):
        class SplitSender(Protocol):
            def __init__(self, u):
                self.u = u
                self.got = False

            def on_round(self, ctx, inbox):
                if inbox:
                    self.got = True
                if self.u == 0 and ctx.round == 1:
                    for dst in (1, 2, 3):
                        ctx.learn(dst)
                        ctx.send(dst, Message("X"))
                ctx.idle()

        class PartitionCrash(Adversary):
            def select_faulty(self, n, max_faulty, rng, inputs=None):
                return {0}

            def plan_round(self, view, rng):
                if view.round == 1:
                    return {0: CrashOrder.keep_destinations({1})}
                return {}

        network = Network(4, SplitSender, adversary=PartitionCrash(), max_faulty=1)
        result = network.run(3)
        assert result.protocol(1).got
        assert not result.protocol(2).got
        assert not result.protocol(3).got

    def test_messages_to_dead_node_evaporate(self):
        class LateSender(Protocol):
            def __init__(self, u):
                self.u = u

            def on_round(self, ctx, inbox):
                if self.u == 1 and ctx.round == 3:
                    ctx.learn(0)
                    ctx.send(0, Message("X"))
                ctx.idle() if self.u != 1 else None

        network = Network(
            4, LateSender, adversary=EagerCrash(), max_faulty=1
        )
        result = network.run(5)
        # Node 0 may or may not be the faulty one under the random pick,
        # but conservation holds exactly either way: the one message is
        # delivered, dropped, or expired (sent to the dead node).
        metrics = result.metrics
        assert metrics.messages_sent == 1
        assert (
            metrics.messages_delivered
            + metrics.messages_dropped
            + metrics.messages_expired
        ) == 1

    def test_crashed_node_does_not_get_on_stop(self):
        stopped = []

        class Stopper(Protocol):
            def __init__(self, u):
                self.u = u

            def on_round(self, ctx, inbox):
                ctx.idle()

            def on_stop(self, ctx):
                stopped.append(self.u)

        network = Network(4, Stopper, adversary=EagerCrash(), max_faulty=2)
        result = network.run(3)
        assert set(stopped) == set(range(4)) - set(result.crashed)


class _CrashZeroEarly(Adversary):
    """Crashes node 0 (drop_all) in round 1; nothing else."""

    def select_faulty(self, n, max_faulty, rng, inputs=None):
        return {0}

    def plan_round(self, view, rng):
        if view.round == 1:
            return {0: CrashOrder.drop_all()}
        return {}


class _SendToZeroLate(Protocol):
    """Node 1 sends to (long-dead) node 0 in round 3."""

    def __init__(self, u):
        self.u = u

    def on_round(self, ctx, inbox):
        if self.u == 1 and ctx.round == 3:
            ctx.learn(0)
            ctx.send(0, Message("X"))
        # The sender stays active until round 3 so the quiescence
        # fast-forward cannot skip past the send.
        if self.u != 1 or ctx.round >= 3:
            ctx.idle()


class TestExpiredAccounting:
    """Messages sent to already-crashed receivers are *expired*, not lost:
    ``sent == delivered + dropped + expired`` holds exactly."""

    def _run(self, collect_trace):
        network = Network(
            4,
            _SendToZeroLate,
            adversary=_CrashZeroEarly(),
            max_faulty=1,
            collect_trace=collect_trace,
        )
        return network.run(5)

    def test_expired_counted_on_traced_path(self):
        result = self._run(collect_trace=True)
        metrics = result.metrics
        assert metrics.messages_sent == 1
        assert metrics.messages_delivered == 0
        assert metrics.messages_dropped == 0
        assert metrics.messages_expired == 1
        expiries = list(result.trace.expiries())
        assert len(expiries) == 1
        assert (expiries[0].src, expiries[0].dst) == (1, 0)

    def test_expired_counted_on_fast_path(self):
        result = self._run(collect_trace=False)
        assert result.trace is None
        assert result.metrics.messages_expired == 1
        assert result.metrics.messages_delivered == 0
        assert result.metrics.messages_dropped == 0

    def test_traced_run_passes_validator(self):
        from repro.sim import validate_run

        assert validate_run(self._run(collect_trace=True)) == []


class TestKnowledgeInit:
    def test_kt1_known_set_excludes_self(self):
        # Regression: KT1 init used to seed each node's ``_known`` with
        # all n ids including its own, inconsistent with KT0/all_ports()
        # semantics (a node has n - 1 ports, none to itself).
        network = Network(5, lambda u: Chatter(u), knowledge=Knowledge.KT1)
        for ctx in network.contexts:
            assert ctx.node_id not in ctx._known
            assert ctx._known == set(range(5)) - {ctx.node_id}

    def test_kt0_starts_empty(self):
        network = Network(5, lambda u: Chatter(u), knowledge=Knowledge.KT0)
        for ctx in network.contexts:
            assert ctx._known == set()


class TestPhaseTimers:
    def test_profiled_run_collects_all_engine_phases(self):
        from repro.obs import ENGINE_PHASES, PhaseTimers

        timers = PhaseTimers()
        network = Network(8, lambda u: Chatter(u, count=3), timers=timers)
        result = network.run(6)
        assert set(result.metrics.phase_seconds) == set(ENGINE_PHASES)
        assert all(v >= 0.0 for v in result.metrics.phase_seconds.values())
        assert result.phase_seconds == result.metrics.phase_seconds

    def test_unprofiled_run_records_no_phases(self):
        network = Network(8, lambda u: Chatter(u, count=3))
        result = network.run(6)
        assert result.metrics.phase_seconds == {}

    def test_profiling_does_not_change_metrics(self):
        from repro.obs import PhaseTimers

        def metrics(timers):
            network = Network(
                16,
                lambda u: Chatter(u, count=3),
                seed=9,
                adversary=EagerCrash(),
                max_faulty=8,
                timers=timers,
            )
            summary = network.run(8).metrics.summary()
            summary.pop("phase_seconds", None)
            return summary

        assert metrics(None) == metrics(PhaseTimers())


class TestFastForward:
    def test_quiescent_run_skips_rounds(self):
        network = Network(8, lambda u: Chatter(u))
        result = network.run(1000)
        assert result.horizon == result.metrics.horizon == 1000
        assert result.metrics.rounds_executed < 10
        # rounds reports the actual last executed round, not the horizon.
        assert result.rounds == result.metrics.rounds == result.metrics.rounds_executed

    def test_fast_forward_waits_for_adversary(self):
        # A lazy adversary crashing at round 50 keeps the engine ticking
        # (cheaply) until the crash is delivered.
        network = Network(
            8, lambda u: Chatter(u), adversary=LazyCrash(crash_round=50), max_faulty=4
        )
        result = network.run(100)
        assert result.metrics.crashes == 4
        assert 50 <= result.metrics.rounds_executed <= 60

    def test_on_stop_sees_last_executed_round(self):
        # Regression: on_stop used to see ctx.round == horizon even when
        # the quiescence fast-forward exited much earlier.
        final_rounds = []

        class Stopper(Protocol):
            def __init__(self, u):
                self.u = u

            def on_round(self, ctx, inbox):
                ctx.idle()

            def on_stop(self, ctx):
                final_rounds.append(ctx.round)

        network = Network(4, Stopper)
        result = network.run(77)
        # Everyone idles after round 1, so round 1 is the last executed.
        assert result.metrics.rounds_executed == 1
        assert final_rounds == [1] * 4

    def test_on_stop_round_matches_horizon_without_fast_forward(self):
        final_rounds = []

        class Buzzer(Protocol):
            def __init__(self, u):
                self.u = u

            def on_round(self, ctx, inbox):
                pass  # stays active every round; no fast-forward

            def on_stop(self, ctx):
                final_rounds.append(ctx.round)

        network = Network(4, Buzzer)
        result = network.run(9)
        assert result.metrics.rounds_executed == 9
        assert final_rounds == [9] * 4


class TestBudget:
    def test_suppress_mode_caps_messages(self):
        network = Network(4, lambda u: Chatter(u, count=10), message_budget=4)
        result = network.run(20)
        assert result.metrics.messages_sent == 4
        assert network.budget_exhausted

    def test_raise_mode_raises(self):
        network = Network(
            4,
            lambda u: Chatter(u, count=10),
            message_budget=4,
            budget_mode="raise",
        )
        with pytest.raises(BudgetExceeded):
            network.run(20)

    def test_unknown_budget_mode_rejected(self):
        with pytest.raises(SimulationError):
            Network(4, lambda u: Chatter(u), budget_mode="bogus")


class TestNoTraceFastPath:
    """Tracing must be an observer: metrics are identical either way."""

    def _metrics(self, collect_trace, message_budget=None):
        network = Network(
            16,
            lambda u: Chatter(u, count=3),
            seed=9,
            adversary=EagerCrash(),
            max_faulty=8,
            collect_trace=collect_trace,
            message_budget=message_budget,
        )
        return network.run(8).metrics

    def test_metrics_identical_with_and_without_trace(self):
        traced = self._metrics(collect_trace=True)
        untraced = self._metrics(collect_trace=False)
        assert untraced == traced  # dataclass equality: every counter/series

    def test_trace_collected_only_when_asked(self):
        network = Network(4, lambda u: Chatter(u), collect_trace=False)
        assert network.run(3).trace is None
        network = Network(4, lambda u: Chatter(u), collect_trace=True)
        trace = network.run(3).trace
        assert trace is not None and trace.events

    def test_budgeted_run_metrics_identical_with_and_without_trace(self):
        # A message budget forces the per-envelope slow path; it must
        # account exactly like the batched fast path.
        traced = self._metrics(collect_trace=True, message_budget=10_000)
        untraced = self._metrics(collect_trace=False, message_budget=10_000)
        unbudgeted = self._metrics(collect_trace=False)
        assert untraced == traced == unbudgeted


class TestDeterminism:
    def test_same_seed_same_run(self):
        def run(seed):
            network = Network(
                16,
                lambda u: Chatter(u, count=2),
                seed=seed,
                adversary=EagerCrash(),
                max_faulty=8,
            )
            result = network.run(6)
            return (
                result.metrics.messages_sent,
                result.metrics.messages_dropped,
                sorted(result.faulty),
                dict(result.crashed),
            )

        assert run(5) == run(5)

    def test_different_seed_different_faulty_set(self):
        def faulty(seed):
            network = Network(
                64,
                lambda u: Chatter(u),
                seed=seed,
                adversary=EagerCrash(),
                max_faulty=32,
            )
            network.run(2)
            return sorted(network.faulty)

        assert faulty(1) != faulty(2)


class TestValidation:
    def test_rejects_single_node(self):
        with pytest.raises(SimulationError):
            Network(1, lambda u: Chatter(u))

    def test_rejects_zero_rounds(self):
        network = Network(4, lambda u: Chatter(u))
        with pytest.raises(SimulationError):
            network.run(0)

    def test_rejects_over_hard_cap(self):
        from repro.sim.network import HARD_MAX_ROUNDS

        network = Network(4, lambda u: Chatter(u))
        with pytest.raises(SimulationError):
            network.run(HARD_MAX_ROUNDS + 1)

    def test_run_result_alive_and_nonfaulty(self):
        network = Network(
            8, lambda u: Chatter(u), adversary=EagerCrash(), max_faulty=4
        )
        result = network.run(3)
        assert set(result.alive) == set(range(8)) - set(result.crashed)
        assert set(result.nonfaulty) == set(range(8)) - result.faulty
