"""Unit tests for metric accounting (repro.sim.metrics)."""

from repro.sim.metrics import Metrics


class TestMetrics:
    def test_record_send_counts_messages_and_bits(self):
        metrics = Metrics()
        metrics.begin_round()
        metrics.record_send(0, "X", 16)
        metrics.record_send(1, "X", 16)
        metrics.record_send(0, "Y", 8)
        assert metrics.messages_sent == 3
        assert metrics.bits_sent == 40
        assert metrics.per_kind_messages == {"X": 2, "Y": 1}
        assert metrics.per_node_sent == {0: 2, 1: 1}

    def test_per_round_series(self):
        metrics = Metrics()
        metrics.begin_round()
        metrics.record_send(0, "X", 8)
        metrics.begin_round()
        metrics.record_send(0, "X", 8)
        metrics.record_send(0, "X", 8)
        assert metrics.per_round_messages == [1, 2]
        assert metrics.max_round_messages == 2

    def test_delivery_and_drop_counters(self):
        metrics = Metrics()
        metrics.record_delivery()
        metrics.record_drop()
        metrics.record_drop()
        assert metrics.messages_delivered == 1
        assert metrics.messages_dropped == 2

    def test_crash_counter(self):
        metrics = Metrics()
        metrics.record_crash()
        assert metrics.crashes == 1

    def test_summary_keys(self):
        summary = Metrics().summary()
        assert {
            "messages_sent",
            "messages_delivered",
            "messages_dropped",
            "bits_sent",
            "rounds",
            "horizon",
            "rounds_executed",
            "crashes",
        } == set(summary)

    def test_max_round_messages_empty(self):
        assert Metrics().max_round_messages == 0
