"""Unit tests for metric accounting (repro.sim.metrics)."""

import pytest

from repro.sim.metrics import Metrics


class TestMetrics:
    def test_record_send_counts_messages_and_bits(self):
        metrics = Metrics()
        metrics.begin_round()
        metrics.record_send(0, "X", 16)
        metrics.record_send(1, "X", 16)
        metrics.record_send(0, "Y", 8)
        assert metrics.messages_sent == 3
        assert metrics.bits_sent == 40
        assert metrics.per_kind_messages == {"X": 2, "Y": 1}
        assert metrics.per_node_sent == {0: 2, 1: 1}

    def test_per_round_series(self):
        metrics = Metrics()
        metrics.begin_round()
        metrics.record_send(0, "X", 8)
        metrics.begin_round()
        metrics.record_send(0, "X", 8)
        metrics.record_send(0, "X", 8)
        assert metrics.per_round_messages == [1, 2]
        assert metrics.max_round_messages == 2

    def test_delivery_drop_and_expiry_counters(self):
        metrics = Metrics()
        metrics.record_delivery()
        metrics.record_drop()
        metrics.record_drop()
        metrics.record_expiry()
        assert metrics.messages_delivered == 1
        assert metrics.messages_dropped == 2
        assert metrics.messages_expired == 1

    def test_record_send_before_begin_round_raises(self):
        """Every send must land in a round bucket, so the per-round series
        always sums to messages_sent (the attribution identity the
        validator enforces)."""
        metrics = Metrics()
        with pytest.raises(ValueError, match="begin_round"):
            metrics.record_send(0, "X", 8)
        # Nothing was half-counted by the failed call.
        assert metrics.messages_sent == 0
        assert metrics.bits_sent == 0

    def test_crash_counter(self):
        metrics = Metrics()
        metrics.record_crash()
        assert metrics.crashes == 1

    def test_summary_keys(self):
        summary = Metrics().summary()
        assert {
            "messages_sent",
            "messages_delivered",
            "messages_dropped",
            "messages_expired",
            "bits_sent",
            "rounds",
            "horizon",
            "rounds_executed",
            "crashes",
        } == set(summary)

    def test_summary_includes_phase_seconds_when_profiled(self):
        metrics = Metrics()
        metrics.phase_seconds["step"] = 0.5
        summary = metrics.summary()
        assert summary["phase_seconds"] == {"step": 0.5}
        # Unprofiled runs keep the summary shape unchanged.
        assert "phase_seconds" not in Metrics().summary()

    def test_max_round_messages_empty(self):
        assert Metrics().max_round_messages == 0


class TestMerge:
    def _part(self, sends, rounds_executed=0, **fields):
        metrics = Metrics(**fields)
        for _ in range(rounds_executed):
            metrics.begin_round()
        for round_index, src, kind, bits in sends:
            metrics.per_round_messages[round_index] += 1
            metrics.messages_sent += 1
            metrics.bits_sent += bits
            metrics.per_kind_messages[kind] += 1
            metrics.per_node_sent[src] = metrics.per_node_sent.get(src, 0) + 1
        return metrics

    def test_empty_merge(self):
        merged = Metrics.merge([])
        assert merged.messages_sent == 0
        assert merged.per_round_messages == []
        assert merged.max_round_messages == 0

    def test_counters_summed(self):
        a = Metrics(
            messages_sent=3, messages_delivered=1, messages_dropped=1,
            messages_expired=1, bits_sent=40, crashes=1,
        )
        b = Metrics(
            messages_sent=5, messages_delivered=3, messages_dropped=0,
            messages_expired=2, bits_sent=60, crashes=2,
        )
        merged = Metrics.merge([a, b])
        assert merged.messages_sent == 8
        assert merged.messages_delivered == 4
        assert merged.messages_dropped == 1
        assert merged.messages_expired == 3
        assert merged.bits_sent == 100
        assert merged.crashes == 3

    def test_phase_seconds_summed_keywise(self):
        a = Metrics()
        a.phase_seconds.update({"step": 0.5, "deliver": 1.0})
        b = Metrics()
        b.phase_seconds.update({"step": 0.25, "transmit": 2.0})
        merged = Metrics.merge([a, b])
        assert merged.phase_seconds == {
            "step": 0.75,
            "deliver": 1.0,
            "transmit": 2.0,
        }
        # Parts without timings merge cleanly with parts that have them.
        assert Metrics.merge([a, Metrics()]).phase_seconds == a.phase_seconds

    def test_rounds_take_maximum(self):
        a = Metrics(rounds=5, horizon=10, rounds_executed=5)
        b = Metrics(rounds=8, horizon=8, rounds_executed=8)
        merged = Metrics.merge([a, b])
        assert merged.rounds == 8
        assert merged.horizon == 10
        assert merged.rounds_executed == 8

    def test_per_kind_counters_summed(self):
        a = self._part([(0, 0, "X", 8), (0, 1, "Y", 8)], rounds_executed=1)
        b = self._part([(0, 0, "X", 8)], rounds_executed=1)
        merged = Metrics.merge([a, b])
        assert merged.per_kind_messages == {"X": 2, "Y": 1}
        assert merged.per_node_sent == {0: 2, 1: 1}

    def test_per_round_series_zero_padded_elementwise_sum(self):
        a = self._part([(0, 0, "X", 8), (1, 0, "X", 8)], rounds_executed=2)
        b = self._part(
            [(0, 0, "X", 8), (2, 0, "X", 8), (2, 0, "X", 8)], rounds_executed=3
        )
        merged = Metrics.merge([a, b])
        assert merged.per_round_messages == [2, 1, 2]
        # The busiest round of the *combined* campaign, not of any part.
        assert merged.max_round_messages == 2

    def test_merge_is_associative(self):
        parts = [
            self._part([(0, u, "X", 8)], rounds_executed=1, crashes=u)
            for u in range(3)
        ]
        left = Metrics.merge([Metrics.merge(parts[:2]), parts[2]])
        flat = Metrics.merge(parts)
        assert left == flat

    def test_merged_bits_match_summaries(self):
        a = Metrics(bits_sent=17, messages_sent=2)
        b = Metrics(bits_sent=5, messages_sent=1)
        merged = Metrics.merge([a, b])
        assert merged.summary()["bits_sent"] == 22
        assert merged.summary()["messages_sent"] == 3
