"""Tests for the trace validator (repro.sim.validate)."""

import pytest

from repro.core import agree, elect_leader
from repro.sim import Network, RunResult, validate_run
from repro.sim.metrics import Metrics
from repro.sim.trace import Trace, TraceEvent


def _result(events, n=8, faulty=frozenset(), crashed=None, metrics=None):
    trace = Trace()
    for event in events:
        trace.record(event)
    if metrics is None:
        metrics = Metrics()
        metrics.messages_sent = sum(1 for e in events if e.kind == "send")
        metrics.messages_delivered = sum(1 for e in events if e.kind == "deliver")
        metrics.messages_dropped = sum(1 for e in events if e.kind == "drop")
        metrics.messages_expired = sum(1 for e in events if e.kind == "expire")
        # Synthetic per-round attribution: one bucket per round seen.
        last_round = max((e.round for e in events), default=0)
        metrics.per_round_messages = [
            sum(1 for e in events if e.kind == "send" and e.round == r)
            for r in range(1, last_round + 1)
        ]
    return RunResult(
        n=n,
        protocols=[],
        metrics=metrics,
        trace=trace,
        faulty=set(faulty),
        crashed=dict(crashed or {}),
        rounds=10,
    )


def send(r, src, dst):
    return TraceEvent(round=r, kind="send", src=src, dst=dst, message_kind="X")


def deliver(r, src, dst, received=None):
    return TraceEvent(
        round=r,
        kind="deliver",
        src=src,
        dst=dst,
        message_kind="X",
        round_received=r + 1 if received is None else received,
    )


def drop(r, src, dst):
    return TraceEvent(round=r, kind="drop", src=src, dst=dst, message_kind="X")


def expire(r, src, dst):
    return TraceEvent(round=r, kind="expire", src=src, dst=dst, message_kind="X")


def crash(r, node):
    return TraceEvent(round=r, kind="crash", src=node)


class TestCleanTraces:
    def test_empty_trace_is_clean(self):
        assert validate_run(_result([])) == []

    def test_simple_exchange_is_clean(self):
        events = [send(1, 0, 1), deliver(1, 0, 1), send(2, 1, 0), deliver(2, 1, 0)]
        assert validate_run(_result(events)) == []

    def test_crash_with_drop_is_clean(self):
        events = [send(1, 0, 1), drop(1, 0, 1), crash(1, 0)]
        result = _result(events, faulty={0}, crashed={0: 1})
        assert validate_run(result) == []

    def test_expire_to_dead_receiver_is_clean(self):
        # Node 1 crashes in round 1; a round-2 message to it expires.
        events = [crash(1, 1), send(2, 0, 1), expire(2, 0, 1)]
        result = _result(events, faulty={1}, crashed={1: 1})
        assert validate_run(result) == []

    def test_expire_in_receivers_crash_round_is_clean(self):
        # Sender and receiver race in the same round: the message was on
        # the wire when the receiver crashed, so it expires legally.
        events = [send(1, 0, 1), crash(1, 1), expire(1, 0, 1)]
        result = _result(events, faulty={1}, crashed={1: 1})
        assert validate_run(result) == []

    def test_untraced_run_rejected(self):
        result = _result([])
        result.trace = None
        with pytest.raises(ValueError):
            validate_run(result)


class TestViolations:
    def test_congest_double_send(self):
        events = [send(1, 0, 1), send(1, 0, 1)]
        assert any("CONGEST" in v for v in validate_run(_result(events)))

    def test_self_message(self):
        assert any("self-message" in v for v in validate_run(_result([send(1, 2, 2)])))

    def test_send_after_crash(self):
        events = [crash(1, 0), send(2, 0, 1)]
        result = _result(events, faulty={0}, crashed={0: 1})
        assert any("dead node" in v for v in validate_run(result))

    def test_delivery_without_send(self):
        assert any(
            "without a matching send" in v
            for v in validate_run(_result([deliver(1, 0, 1)]))
        )

    def test_drop_outside_crash_round(self):
        events = [send(2, 0, 1), drop(2, 0, 1), crash(5, 0)]
        result = _result(events, faulty={0}, crashed={0: 5})
        assert any("outside its crash round" in v for v in validate_run(result))

    def test_nonfaulty_crash(self):
        events = [crash(1, 3)]
        result = _result(events, faulty=set(), crashed={3: 1})
        assert any("non-faulty" in v for v in validate_run(result))

    def test_metrics_mismatch(self):
        metrics = Metrics()
        metrics.messages_sent = 99
        result = _result([send(1, 0, 1), deliver(1, 0, 1)], metrics=metrics)
        assert any("metrics counted" in v for v in validate_run(result))

    def test_unaccounted_send_breaks_conservation(self):
        events = [send(1, 0, 1)]  # never delivered, dropped, or expired
        assert any(
            "conservation broken" in v for v in validate_run(_result(events))
        )

    def test_expire_without_crash(self):
        events = [send(1, 0, 1), expire(1, 0, 1)]
        assert any(
            "expired but nothing ever crashed" in v
            for v in validate_run(_result(events))
        )

    def test_expire_before_receiver_crashed(self):
        # Receiver crashes only in round 5; a round-2 expiry is bogus.
        events = [send(2, 0, 1), expire(2, 0, 1), crash(5, 1)]
        result = _result(events, faulty={1}, crashed={1: 5})
        assert any(
            "the receiver crashed in round 5" in v for v in validate_run(result)
        )

    def test_expired_metrics_mismatch(self):
        metrics = Metrics()
        metrics.messages_sent = 1
        metrics.messages_expired = 7
        metrics.per_round_messages = [1]
        events = [crash(1, 1), send(1, 0, 1), expire(1, 0, 1)]
        result = _result(events, faulty={1}, crashed={1: 1}, metrics=metrics)
        assert any("metrics counted 7" in v for v in validate_run(result))

    def test_per_round_attribution_mismatch(self):
        metrics = Metrics()
        metrics.messages_sent = 1
        metrics.messages_delivered = 1
        metrics.per_round_messages = []  # the send lost its round bucket
        events = [send(1, 0, 1), deliver(1, 0, 1)]
        result = _result(events, metrics=metrics)
        assert any(
            "per-round attribution broken" in v for v in validate_run(result)
        )

    def test_late_delivery(self):
        # Arrival two rounds after the send breaks the latency invariant.
        events = [send(1, 0, 1), deliver(1, 0, 1, received=3)]
        assert any("arrived in round 3" in v for v in validate_run(_result(events)))

    def test_instant_delivery(self):
        # Same-round arrival (zero latency) is just as illegal.
        events = [send(1, 0, 1), deliver(1, 0, 1, received=1)]
        assert any("arrived in round 1" in v for v in validate_run(_result(events)))

    def test_delivery_without_arrival_round(self):
        events = [
            send(1, 0, 1),
            TraceEvent(round=1, kind="deliver", src=0, dst=1, message_kind="X"),
        ]
        assert any(
            "no recorded arrival round" in v for v in validate_run(_result(events))
        )


class TestRealRuns:
    @pytest.mark.parametrize("adversary", ["none", "eager", "random", "adaptive"])
    def test_leader_election_runs_are_clean(self, fast_params, adversary):
        result = elect_leader(
            n=96, alpha=0.5, seed=3, adversary=adversary,
            params=fast_params(96), collect_trace=True,
        )
        run = RunResult(
            n=result.n,
            protocols=[],
            metrics=result.metrics,
            trace=result.trace,
            faulty=result.faulty,
            crashed=result.crashed,
            rounds=result.rounds,
        )
        assert validate_run(run) == []

    def test_agreement_runs_are_clean(self, fast_params):
        result = agree(
            n=96, alpha=0.5, inputs="mixed", seed=4, adversary="split",
            params=fast_params(96), collect_trace=True,
        )
        run = RunResult(
            n=result.n,
            protocols=[],
            metrics=result.metrics,
            trace=result.trace,
            faulty=result.faulty,
            crashed=result.crashed,
            rounds=result.rounds,
        )
        assert validate_run(run) == []
