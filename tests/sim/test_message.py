"""Unit tests for message primitives (repro.sim.message)."""

import pytest

from repro.sim.message import Delivery, Envelope, Message, payload_bits


class TestMessage:
    def test_requires_kind(self):
        with pytest.raises(ValueError):
            Message("")

    def test_rejects_non_int_fields(self):
        with pytest.raises(TypeError):
            Message("X", ("rank",))

    def test_none_field_is_allowed(self):
        message = Message("X", (None, 5))
        assert message.field(0) is None
        assert message.field(1) == 5

    def test_equality(self):
        assert Message("X", (1, 2)) == Message("X", (1, 2))
        assert Message("X", (1, 2)) != Message("X", (2, 1))

    def test_hashable(self):
        assert len({Message("X", (1,)), Message("X", (1,))}) == 1


class TestPayloadBits:
    def test_empty_message_costs_tag_only(self):
        assert payload_bits(Message("X")) == 8

    def test_none_costs_presence_bit(self):
        assert payload_bits(Message("X", (None,))) == 9

    def test_larger_values_cost_more(self):
        small = payload_bits(Message("X", (3,)))
        large = payload_bits(Message("X", (3_000_000,)))
        assert large > small

    def test_bits_grow_logarithmically(self):
        # Quadrupling n in a rank [1, n^4] adds ~8 bits.
        n1, n2 = 2**8, 2**10
        diff = payload_bits(Message("X", (n2**4,))) - payload_bits(
            Message("X", (n1**4,))
        )
        assert diff == 8

    def test_bits_property_matches_function(self):
        message = Message("Y", (17, None, 4))
        assert message.bits == payload_bits(message)

    def test_bits_cached_value_is_stable(self):
        message = Message("Y", (17,))
        assert message.bits == message.bits


class TestEnvelopeAndDelivery:
    def test_envelope_carries_bits(self):
        message = Message("X", (9,))
        envelope = Envelope(src=1, dst=2, message=message, round_sent=3)
        assert envelope.bits == message.bits

    def test_delivery_accessors(self):
        message = Message("K", (1, None))
        delivery = Delivery(sender=7, message=message, round_received=4)
        assert delivery.kind == "K"
        assert delivery.fields == (1, None)
