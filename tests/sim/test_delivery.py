"""Delivery-schedule tests (repro.sim.delivery): schedule semantics,
engine integration under Δ > 0, latency accounting, quiescence with
in-flight messages, and the halted-node / duplicate-wake engine
regressions found while landing the delay layer."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import Message, Network, Protocol
from repro.sim.delivery import (
    SCHEDULE_KINDS,
    SYNCHRONOUS,
    DeliverySchedule,
    SynchronousDelivery,
    TargetedDelay,
    UniformDelay,
    schedule_from_dict,
)
from repro.sim.message import Envelope


def _env(src=0, dst=1, round_sent=1):
    return Envelope(src, dst, Message("X"), round_sent)


class TestSchedules:
    def test_synchronous_shared_instance(self):
        assert SYNCHRONOUS.is_synchronous
        assert SYNCHRONOUS.max_delay == 0
        assert SYNCHRONOUS.delay(_env()) == 0
        assert SYNCHRONOUS.name() == "sync"
        assert isinstance(SYNCHRONOUS, SynchronousDelivery)

    def test_uniform_delay_is_deterministic(self):
        schedule = UniformDelay(max_delay=4, salt=17)
        twin = UniformDelay(max_delay=4, salt=17)
        envelopes = [
            _env(src, dst, r)
            for src in range(4)
            for dst in range(4)
            for r in (1, 5, 9)
            if src != dst
        ]
        assert [schedule.delay(e) for e in envelopes] == [
            twin.delay(e) for e in envelopes
        ]

    def test_uniform_delay_within_bound(self):
        schedule = UniformDelay(max_delay=3, salt=5)
        delays = {
            schedule.delay(_env(src, dst, r))
            for src in range(8)
            for dst in range(8)
            for r in range(1, 10)
            if src != dst
        }
        assert delays <= set(range(4))
        # The hash actually spreads: with 500+ draws every bucket shows up.
        assert delays == {0, 1, 2, 3}

    def test_uniform_delay_zero_is_synchronous(self):
        schedule = UniformDelay(max_delay=0, salt=123)
        assert schedule.is_synchronous
        assert schedule.delay(_env()) == 0

    def test_uniform_delay_salt_changes_draws(self):
        envelopes = [_env(s, d, r) for s in range(6) for d in range(6) for r in (1, 2) if s != d]
        a = [UniformDelay(3, salt=1).delay(e) for e in envelopes]
        b = [UniformDelay(3, salt=2).delay(e) for e in envelopes]
        assert a != b

    def test_uniform_delay_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            UniformDelay(max_delay=-1)

    def test_targeted_delay_hits_only_victims(self):
        schedule = TargetedDelay({3: 2, 5: 4})
        assert schedule.max_delay == 4
        assert not schedule.is_synchronous
        assert schedule.delay(_env(dst=3)) == 2
        assert schedule.delay(_env(dst=5)) == 4
        assert schedule.delay(_env(dst=0)) == 0

    def test_targeted_delay_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            TargetedDelay({1: -2})

    def test_empty_targeted_delay_is_synchronous(self):
        assert TargetedDelay({}).is_synchronous


class TestScheduleSerialisation:
    def test_round_trips(self):
        for schedule in (
            SYNCHRONOUS,
            UniformDelay(3, salt=42),
            TargetedDelay({1: 2, 7: 5}),
        ):
            restored = schedule_from_dict(schedule.to_dict())
            assert type(restored) is type(schedule)
            assert restored.max_delay == schedule.max_delay
            assert restored.to_dict() == schedule.to_dict()

    def test_none_means_synchronous(self):
        assert schedule_from_dict(None) is SYNCHRONOUS

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="quantum"):
            schedule_from_dict({"kind": "quantum"})

    def test_kinds_constant_matches_parser(self):
        for kind in SCHEDULE_KINDS:
            data = {"kind": kind}
            assert isinstance(schedule_from_dict(data), DeliverySchedule)


class _Chatter(Protocol):
    """Node 0 sends one message to node 1 in round 1; everyone idles."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.received = []

    def on_round(self, ctx, inbox):
        for delivery in inbox:
            self.received.append((ctx.round, delivery.kind, delivery.fields))
        if self.node_id == 0 and ctx.round == 1:
            ctx.learn(1)
            ctx.send(1, Message("X", (0,)))
        ctx.idle()


class TestEngineIntegration:
    def test_targeted_delay_stretches_arrival(self):
        # Sent in round 1, +3 extra rounds: arrives in round 5, and the
        # quiescence fast-forward must wait for the in-flight message.
        network = Network(4, _Chatter, delivery=TargetedDelay({1: 3}))
        result = network.run(10)
        assert result.protocol(1).received == [(5, "X", (0,))]
        assert result.metrics.max_delivery_latency == 4
        assert result.max_delay == 3

    def test_latency_histogram_within_bound(self):
        class Broadcast(Protocol):
            def __init__(self, u):
                self.node_id = u

            def on_round(self, ctx, inbox):
                if ctx.round == 1:
                    for dst in ctx.all_ports():
                        ctx.send(dst, Message("B"))
                ctx.idle()

        delta = 2
        network = Network(
            8, Broadcast, delivery=UniformDelay(delta, salt=9)
        )
        result = network.run(12)
        metrics = result.metrics
        assert set(metrics.delivery_latency) <= set(range(1, delta + 2))
        assert (
            metrics.messages_sent
            == metrics.messages_delivered
            + metrics.messages_dropped
            + metrics.messages_expired
        )
        assert metrics.messages_delivered == 8 * 7

    def test_in_flight_message_expires_at_horizon(self):
        # A message delayed past the last round is expired, not lost
        # silently: conservation still balances.
        network = Network(4, _Chatter, delivery=TargetedDelay({1: 50}))
        result = network.run(6)
        metrics = result.metrics
        assert result.protocol(1).received == []
        assert metrics.messages_expired == 1
        assert (
            metrics.messages_sent
            == metrics.messages_delivered
            + metrics.messages_dropped
            + metrics.messages_expired
        )

    def test_delta_zero_schedule_matches_default_engine(self):
        plain = Network(6, _Chatter).run(8)
        delayed = Network(
            6, _Chatter, delivery=UniformDelay(0, salt=77)
        ).run(8)
        assert plain.protocol(1).received == delayed.protocol(1).received
        assert (
            plain.metrics.messages_sent == delayed.metrics.messages_sent
        )
        assert plain.metrics.rounds == delayed.metrics.rounds
        assert delayed.max_delay == 0


class TestHaltedNodeRegression:
    """A delivery must wake an idle node but never a halted one.

    Regression: the delivery-woken ``extra`` list only excluded crashed
    nodes, so a halted protocol was stepped again (with its wake reset by
    the engine), spinning forever and defeating the quiescence
    fast-forward."""

    class _HaltsEarly(Protocol):
        """Node 1 halts in round 1; node 0 keeps messaging it anyway."""

        def __init__(self, node_id):
            self.node_id = node_id
            self.calls = 0

        def on_round(self, ctx, inbox):
            self.calls += 1
            if self.node_id == 1:
                ctx.halt()
                return
            if self.node_id == 0 and ctx.round <= 3:
                ctx.learn(1)
                ctx.send(1, Message("PING", (ctx.round,)))
                return
            ctx.idle()

    def test_halted_node_not_resurrected_by_deliveries(self):
        network = Network(4, self._HaltsEarly)
        result = network.run(30)
        assert result.protocol(1).calls == 1

    def test_run_still_quiesces(self):
        network = Network(4, self._HaltsEarly)
        result = network.run(30)
        # Last delivery to the halted node lands in round 4; nothing after
        # that may keep the engine busy.
        assert result.rounds <= 5
        metrics = result.metrics
        assert metrics.messages_sent == 3
        assert metrics.messages_delivered == 3

    def test_halted_with_delayed_in_flight_messages(self):
        class _HaltsUnderDelay(self._HaltsEarly):
            pass

        network = Network(
            4, _HaltsUnderDelay, delivery=TargetedDelay({1: 2})
        )
        result = network.run(30)
        assert result.protocol(1).calls == 1
        assert result.metrics.messages_delivered == 3


class TestDuplicateWakeRegression:
    """Each node steps at most once per round.

    Regression: a node woken early by deliveries that re-arms the same
    ``wake_at`` boundary pushes one heap entry per invocation; all are
    live at the boundary, so the node used to step several times in one
    round, re-reading the same inbox (message double-counting)."""

    class _Buffering(Protocol):
        """Node 1 buffers until round 5; node 0 pings it rounds 1-3."""

        def __init__(self, node_id):
            self.node_id = node_id
            self.rounds_stepped = []
            self.total_received = 0

        def on_round(self, ctx, inbox):
            self.rounds_stepped.append(ctx.round)
            self.total_received += len(inbox)
            if self.node_id == 1:
                if ctx.round < 5:
                    ctx.wake_at(5)  # re-arm the same boundary every wake
                else:
                    ctx.idle()
                return
            if self.node_id == 0 and ctx.round <= 3:
                ctx.learn(1)
                ctx.send(1, Message("PING", (ctx.round,)))
                return
            ctx.idle()

    def test_boundary_round_steps_exactly_once(self):
        network = Network(4, self._Buffering)
        result = network.run(10)
        stepped = result.protocol(1).rounds_stepped
        assert stepped.count(5) == 1
        # Woken by each delivery (rounds 2-4) plus the armed boundary.
        assert stepped == [1, 2, 3, 4, 5]

    def test_no_message_double_counting(self):
        network = Network(4, self._Buffering)
        result = network.run(10)
        assert result.protocol(1).total_received == 3
        assert result.metrics.messages_delivered == 3
