"""Unit tests for the per-node engine API (repro.sim.node.Context)."""

import pytest

from repro.errors import KnowledgeViolation, ProtocolViolation
from repro.sim import Message, Network, Protocol
from repro.types import Knowledge


class Recorder(Protocol):
    """Programmable protocol: runs a script of (round -> callable)."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.script = {}
        self.inboxes = []
        self.error = None

    def on_round(self, ctx, inbox):
        self.inboxes.append((ctx.round, inbox))
        action = self.script.get(ctx.round)
        if action:
            try:
                action(ctx)
            except Exception as exc:  # re-raised by tests via .error
                self.error = exc
                raise


def _network(n=8, scripts=None, **kwargs):
    protocols = {}

    def factory(u):
        protocol = Recorder(u)
        if scripts and u in scripts:
            protocol.script = scripts[u]
        protocols[u] = protocol
        return protocol

    network = Network(n, factory, seed=1, **kwargs)
    return network, protocols


class TestSampling:
    def test_sample_nodes_distinct_and_not_self(self):
        def check(ctx):
            sampled = ctx.sample_nodes(5)
            assert len(sampled) == len(set(sampled)) == 5
            assert ctx.node_id not in sampled

        network, _ = _network(scripts={0: {1: check}})
        network.run(2)

    def test_sample_all_other_nodes(self):
        def check(ctx):
            sampled = ctx.sample_nodes(7)
            assert sorted(sampled) == [1, 2, 3, 4, 5, 6, 7]

        network, _ = _network(scripts={0: {1: check}})
        network.run(2)

    def test_sample_too_many_rejected(self):
        def check(ctx):
            ctx.sample_nodes(8)

        network, protocols = _network(scripts={0: {1: check}})
        with pytest.raises(ProtocolViolation):
            network.run(2)

    def test_all_ports_lists_everyone_else(self):
        def check(ctx):
            assert sorted(ctx.all_ports()) == [1, 2, 3, 4, 5, 6, 7]

        network, _ = _network(scripts={0: {1: check}})
        network.run(2)


class TestKnowledgeEnforcement:
    def test_kt0_blocks_unknown_destination(self):
        def bad(ctx):
            ctx.send(3, Message("X"))

        network, _ = _network(scripts={0: {1: bad}})
        with pytest.raises(KnowledgeViolation):
            network.run(2)

    def test_kt0_allows_sampled_destination(self):
        def good(ctx):
            target = ctx.sample_nodes(1)[0]
            ctx.send(target, Message("X"))

        network, _ = _network(scripts={0: {1: good}})
        result = network.run(3)
        assert result.metrics.messages_sent == 1

    def test_kt0_allows_reply_to_sender(self):
        replies = []

        class Replier(Protocol):
            def __init__(self, u):
                self.u = u

            def on_round(self, ctx, inbox):
                if self.u == 0 and ctx.round == 1:
                    ctx.send(ctx.sample_nodes(1)[0], Message("PING"))
                for delivery in inbox:
                    if delivery.kind == "PING":
                        # Reply along the arrival port: legal under KT0.
                        ctx.send(delivery.sender, Message("PONG"))
                        replies.append(delivery.sender)
                ctx.idle()

        network = Network(8, Replier, seed=2)
        result = network.run(4)
        assert result.metrics.messages_delivered == 2  # ping + pong
        assert replies == [0]

    def test_kt1_allows_any_destination(self):
        def bold(ctx):
            ctx.send(5, Message("X"))

        network, _ = _network(scripts={0: {1: bold}}, knowledge=Knowledge.KT1)
        result = network.run(2)
        assert result.metrics.messages_sent == 1

    def test_learn_whitelists_forwarded_handle(self):
        def use_learned(ctx):
            ctx.learn(6)
            ctx.send(6, Message("X"))

        network, _ = _network(scripts={0: {1: use_learned}})
        assert network.run(2).metrics.messages_sent == 1


class TestSendValidation:
    def test_send_to_self_rejected(self):
        def selfie(ctx):
            ctx.send(ctx.node_id, Message("X"))

        network, _ = _network(scripts={0: {1: selfie}})
        with pytest.raises(ProtocolViolation):
            network.run(2)

    def test_send_out_of_range_rejected(self):
        def oob(ctx):
            ctx.send(99, Message("X"))

        network, _ = _network(scripts={0: {1: oob}}, knowledge=Knowledge.KT1)
        with pytest.raises(ProtocolViolation):
            network.run(2)

    def test_send_after_halt_rejected(self):
        def halt_then_send(ctx):
            ctx.halt()
            ctx.send(1, Message("X"))

        network, _ = _network(scripts={0: {1: halt_then_send}}, knowledge=Knowledge.KT1)
        with pytest.raises(ProtocolViolation):
            network.run(2)

    def test_send_many(self):
        def fanout(ctx):
            ctx.send_many(ctx.sample_nodes(3), Message("X"))

        network, _ = _network(scripts={0: {1: fanout}})
        assert network.run(2).metrics.messages_sent == 3


class TestScheduling:
    def test_wake_at_past_round_rejected(self):
        def bad_wake(ctx):
            ctx.wake_at(ctx.round)

        network, _ = _network(scripts={0: {1: bad_wake}})
        with pytest.raises(ProtocolViolation):
            network.run(2)

    def test_wake_at_fires_exactly_once(self):
        rounds_seen = []

        class Waker(Protocol):
            def __init__(self, u):
                self.u = u

            def on_round(self, ctx, inbox):
                rounds_seen.append((self.u, ctx.round))
                if self.u == 0 and ctx.round == 1:
                    ctx.wake_at(5)
                else:
                    ctx.idle()

        network = Network(4, Waker, seed=0)
        network.run(8)
        zero_rounds = [r for (u, r) in rounds_seen if u == 0]
        assert zero_rounds == [1, 5]

    def test_idle_node_woken_by_message(self):
        woken_rounds = []

        class Sleeper(Protocol):
            def __init__(self, u):
                self.u = u

            def on_round(self, ctx, inbox):
                if inbox:
                    woken_rounds.append(ctx.round)
                if self.u == 0 and ctx.round == 3:
                    ctx.send(ctx.sample_nodes(1)[0], Message("X"))
                    ctx.idle()
                elif self.u == 0:
                    pass  # stays active until round 3
                else:
                    ctx.idle()

        network = Network(4, Sleeper, seed=3)
        network.run(6)
        assert woken_rounds == [4]

    def test_halted_node_never_runs_again(self):
        calls = []

        class Halter(Protocol):
            def __init__(self, u):
                self.u = u

            def on_round(self, ctx, inbox):
                calls.append((self.u, ctx.round))
                ctx.halt()

        network = Network(3, Halter, seed=0)
        network.run(5)
        assert calls == [(0, 1), (1, 1), (2, 1)]
