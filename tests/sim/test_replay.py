"""Tests for trace replay (repro.sim.replay) and the RefereeCrash
adversary (Lemma 3's stress strategy)."""

import pytest

from repro.core import elect_leader
from repro.faults import RefereeCrash
from repro.rng import seed_sequence
from repro.sim import busiest_round, replay, timeline_table
from repro.sim.trace import Trace, TraceEvent


def _trace():
    trace = Trace()
    trace.record(TraceEvent(round=1, kind="send", src=0, dst=1, message_kind="A"))
    trace.record(TraceEvent(round=1, kind="send", src=0, dst=2, message_kind="A"))
    trace.record(TraceEvent(round=1, kind="deliver", src=0, dst=1, message_kind="A"))
    trace.record(TraceEvent(round=1, kind="drop", src=0, dst=2, message_kind="A"))
    trace.record(TraceEvent(round=1, kind="crash", src=0))
    trace.record(TraceEvent(round=3, kind="send", src=1, dst=2, message_kind="B"))
    trace.record(TraceEvent(round=3, kind="deliver", src=1, dst=2, message_kind="B"))
    return trace


class TestReplay:
    def test_per_round_counts(self):
        summaries = replay(_trace())
        assert [s.round for s in summaries] == [1, 3]
        first = summaries[0]
        assert first.sent == 2
        assert first.delivered == 1
        assert first.dropped == 1
        assert first.senders == {0}
        assert first.crashed == [0]
        assert first.by_kind == {"A": 2}

    def test_quiet_rounds_are_omitted(self):
        summaries = replay(_trace())
        assert all(s.round != 2 for s in summaries)

    def test_busiest_round(self):
        assert busiest_round(_trace()).round == 1

    def test_busiest_of_empty_trace(self):
        with pytest.raises(ValueError):
            busiest_round(Trace())

    def test_timeline_table_renders(self):
        text = timeline_table(_trace())
        assert "execution timeline" in text
        assert "A:2" in text

    def test_timeline_limit(self):
        text = timeline_table(_trace(), limit=1)
        assert "B:1" not in text

    def test_on_real_run_matches_metrics(self, fast_params):
        result = elect_leader(
            n=96, alpha=0.5, seed=2, adversary="random",
            params=fast_params(96), collect_trace=True,
        )
        summaries = replay(result.trace)
        assert sum(s.sent for s in summaries) == result.messages
        assert sum(len(s.crashed) for s in summaries) == result.metrics.crashes


class TestRefereeCrash:
    def test_protocol_survives_lemma3_attack(self, fast_params):
        # Crashing every faulty referee right before forwarding is the
        # strategy Lemma 3 is designed to defeat.
        ok = sum(
            elect_leader(
                n=96, alpha=0.5, seed=seed, adversary="referees",
                params=fast_params(96),
            ).success
            for seed in seed_sequence(61, 6)
        )
        assert ok >= 5

    def test_crashes_only_senders_at_crash_round(self, fast_params):
        result = elect_leader(
            n=96, alpha=0.5, seed=3, adversary=RefereeCrash(crash_round=2),
            params=fast_params(96), collect_trace=True,
        )
        assert all(round_ == 2 for round_ in result.crashed.values())

    def test_validates_round(self):
        with pytest.raises(ValueError):
            RefereeCrash(crash_round=0)

    def test_name(self):
        assert RefereeCrash().name() == "referee-crash@2"
