"""Behavioural tests for the Section IV-A leader-election protocol.

These use reduced sampling constants (see conftest.FAST) so each run is
~10ms; the integration suite re-runs key cases with paper constants.
"""

import pytest

from repro.core import elect_leader
from repro.core.leader_election import LeaderElectionProtocol
from repro.core.schedule import LeaderElectionSchedule
from repro.faults.strategies import LazyCrash
from repro.rng import seed_sequence
from repro.types import NodeState

N = 96
ALPHA = 0.5


def run(seed, adversary="random", fast_params=None, n=N, alpha=ALPHA, **kwargs):
    return elect_leader(
        n=n, alpha=alpha, seed=seed, adversary=adversary, params=fast_params, **kwargs
    )


class TestHappyPath:
    def test_fault_free_elects_unique_leader(self, fast_params):
        result = run(1, adversary="none", fast_params=fast_params(N))
        assert result.strict_success
        assert len(result.elected_alive) == 1

    def test_leader_has_a_rank_everyone_believes(self, fast_params):
        result = run(2, adversary="none", fast_params=fast_params(N))
        leader = result.leader_node
        assert result.agreed_rank == result.ranks[leader]

    def test_all_nodes_decide_a_state(self, fast_params):
        result = run(3, adversary="none", fast_params=fast_params(N), collect_trace=True)
        # Every alive node's protocol ends in ELECTED or NON_ELECTED.
        # (The result object only tracks candidates; spot-check via ranks.)
        assert len(result.ranks) == N

    def test_fault_free_uses_no_crashes(self, fast_params):
        result = run(4, adversary="none", fast_params=fast_params(N))
        assert result.metrics.crashes == 0
        assert result.crashed == {}

    def test_committee_size_reasonable(self, fast_params):
        params = fast_params(N)
        result = run(5, adversary="none", fast_params=params)
        assert 1 <= result.committee_size <= 4 * params.expected_candidates


class TestUnderCrashes:
    @pytest.mark.parametrize(
        "adversary", ["eager", "lazy", "random", "staggered", "split", "adaptive"]
    )
    def test_succeeds_against_portfolio(self, fast_params, adversary):
        successes = sum(
            run(seed, adversary=adversary, fast_params=fast_params(N)).success
            for seed in seed_sequence(11, 5)
        )
        assert successes >= 4  # w.h.p. Monte-Carlo: allow one unlucky seed

    def test_at_most_one_alive_leader(self, fast_params):
        for seed in seed_sequence(13, 10):
            result = run(seed, adversary="split", fast_params=fast_params(N))
            assert len(result.elected_alive) <= 1

    def test_eager_crash_shrinks_message_count(self, fast_params):
        alive = run(17, adversary="none", fast_params=fast_params(N)).messages
        crashed = run(17, adversary="eager", fast_params=fast_params(N)).messages
        assert crashed < alive

    def test_posthumous_leader_accepted(self, fast_params):
        # Lazy adversary crashes everything near the end: if the leader was
        # faulty it crashed *after* electing itself (Definition 1 footnote).
        outcomes = [
            run(seed, adversary="lazy", fast_params=fast_params(N))
            for seed in seed_sequence(19, 8)
        ]
        assert all(o.success for o in outcomes)
        assert any(o.elected_crashed for o in outcomes) or all(
            o.strict_success for o in outcomes
        )

    def test_crashed_node_never_wins_while_alive_nodes_disagree(self, fast_params):
        # success=False runs must never be reported as success.
        for seed in seed_sequence(23, 10):
            result = run(seed, adversary="adaptive", fast_params=fast_params(N))
            if not result.beliefs_agree:
                assert not result.success


class TestFaultBudget:
    def test_explicit_faulty_count(self, fast_params):
        result = run(29, fast_params=fast_params(N), faulty_count=10)
        assert len(result.faulty) == 10

    def test_zero_faulty_count(self, fast_params):
        result = run(31, fast_params=fast_params(N), faulty_count=0)
        assert result.faulty == set()
        assert result.strict_success

    def test_default_uses_max_faulty(self, fast_params):
        params = fast_params(N)
        result = run(37, fast_params=params)
        assert len(result.faulty) == params.max_faulty


class TestLeaderQuality:
    def test_leader_nonfaulty_rate_near_alpha(self, fast_params):
        # Under a uniform faulty set of (1-alpha) n nodes that never
        # crashes before the end, P[leader non-faulty] ~ alpha.
        trials = 30
        nonfaulty = 0
        judged = 0
        for seed in seed_sequence(41, trials):
            result = run(seed, adversary=LazyCrash(), fast_params=fast_params(N))
            if result.success:
                judged += 1
                nonfaulty += not result.leader_is_faulty
        assert judged >= trials - 2
        # alpha = 0.5: expect ~half; demand at least a third (30 trials).
        assert nonfaulty / judged >= 1 / 3


class TestProtocolStateMachine:
    def _protocol(self, node_id=0, n=64, alpha=0.5):
        from repro.params import Params

        params = Params(n=n, alpha=alpha)
        schedule = LeaderElectionSchedule.from_params(params)
        return LeaderElectionProtocol(node_id, params, schedule)

    def test_initial_state(self):
        protocol = self._protocol()
        assert protocol.state is NodeState.UNDECIDED
        assert protocol.rank is None
        assert not protocol.is_candidate

    def test_non_candidate_finishes_non_elected(self, fast_params):
        result = run(43, adversary="none", fast_params=fast_params(N))
        # Every non-candidate is NON_ELECTED; sample one via the result.
        assert set(result.candidates_all) != set(range(N))

    def test_messages_within_theorem_bound_scaled(self, paper_params):
        # With paper constants the measured count must stay within a
        # constant multiple of the Theorem 4.1 bound.
        params = paper_params(128)
        result = run(47, adversary="none", fast_params=params, n=128)
        assert result.messages <= 60 * params.le_message_bound()

    def test_rounds_match_schedule(self, fast_params):
        params = fast_params(N)
        schedule = LeaderElectionSchedule.from_params(params)
        result = run(53, adversary="none", fast_params=params)
        assert result.horizon == schedule.last_round
        assert result.rounds <= schedule.last_round


class TestTraceIntegration:
    def test_trace_collects_events(self, fast_params):
        result = run(59, fast_params=fast_params(N), collect_trace=True)
        assert result.trace is not None
        assert result.trace.message_count() == result.messages

    def test_no_trace_by_default(self, fast_params):
        result = run(61, fast_params=fast_params(N))
        assert result.trace is None
