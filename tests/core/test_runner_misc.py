"""Runner-level validation and wiring tests (repro.core.runner)."""

import pytest

from repro.core import INPUT_PATTERNS, agree, elect_leader
from repro.core.runner import _resolve_adversary
from repro.faults import Adversary, EagerCrash


class TestAdversaryResolution:
    def test_instance_passthrough(self):
        adversary = EagerCrash()
        assert _resolve_adversary(adversary, horizon=10) is adversary

    def test_name_resolution(self):
        assert _resolve_adversary("eager", horizon=10).name() == "eager"

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            _resolve_adversary("borg", horizon=10)

    def test_custom_adversary_through_runner(self, fast_params):
        class CountingAdversary(Adversary):
            calls = 0

            def plan_round(self, view, rng):
                CountingAdversary.calls += 1
                return {}

            def done(self, view):
                return True

        result = agree(
            n=96, alpha=0.5, inputs="all1", seed=1,
            adversary=CountingAdversary(), params=fast_params(96),
        )
        assert result.success
        assert CountingAdversary.calls > 0


class TestInputPatterns:
    def test_constant_matches_make_inputs(self):
        from repro.core import make_inputs

        for pattern in INPUT_PATTERNS:
            bits = make_inputs(32, pattern, seed=1)
            assert len(bits) == 32

    def test_adversary_sees_inputs(self, fast_params):
        seen = {}

        class Inspector(Adversary):
            def select_faulty(self, n, max_faulty, rng, inputs=None):
                seen["inputs"] = inputs
                return set()

            def done(self, view):
                return True

        agree(
            n=96, alpha=0.5, inputs="all0", seed=2,
            adversary=Inspector(), params=fast_params(96),
        )
        assert seen["inputs"] == [0] * 96


class TestResultWiring:
    def test_seed_recorded(self, fast_params):
        result = elect_leader(n=96, alpha=0.5, seed=777, params=fast_params(96))
        assert result.seed == 777

    def test_adversary_name_recorded(self, fast_params):
        result = elect_leader(
            n=96, alpha=0.5, seed=1, adversary="staggered", params=fast_params(96)
        )
        assert result.adversary == "staggered/4"

    def test_alpha_recorded_from_params(self, fast_params):
        params = fast_params(96, alpha=0.25)
        result = agree(n=96, alpha=0.25, inputs="mixed", seed=1, params=params)
        assert result.alpha == 0.25
