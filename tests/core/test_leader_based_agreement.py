"""Tests for the agreement-via-leader-election reduction (Section V remark)."""

import random

import pytest

from repro.core import agree, agree_via_election
from repro.core.leader_based_agreement import (
    decode_input_from_rank,
    encode_input_in_rank,
)
from repro.rng import seed_sequence

N = 96
ALPHA = 0.5


class TestRankEncoding:
    def test_roundtrip(self):
        rng = random.Random(0)
        for _ in range(200):
            rank = rng.randint(1, N**4)
            for bit in (0, 1):
                encoded = encode_input_in_rank(rank, bit)
                assert decode_input_from_rank(encoded) == bit

    def test_stays_in_range(self):
        for rank in (1, 2, N**4 - 1, N**4):
            for bit in (0, 1):
                assert 1 <= encode_input_in_rank(rank, bit) <= N**4

    def test_preserves_rank_when_parity_matches(self):
        assert encode_input_in_rank(10, 0) == 10
        assert encode_input_in_rank(11, 1) == 11

    def test_shifts_by_at_most_one(self):
        for rank in range(2, 50):
            for bit in (0, 1):
                assert abs(encode_input_in_rank(rank, bit) - rank) <= 1


class TestReduction:
    def test_reaches_agreement(self, fast_params):
        ok = sum(
            agree_via_election(
                n=N, alpha=ALPHA, inputs="mixed", seed=seed, adversary="random",
                params=fast_params(N),
            ).success
            for seed in seed_sequence(1, 8)
        )
        assert ok >= 7

    def test_validity_structural(self, fast_params):
        # The decided bit is the winner's input — always valid.
        for seed in seed_sequence(2, 8):
            result = agree_via_election(
                n=N, alpha=ALPHA, inputs="single1", seed=seed, adversary="random",
                params=fast_params(N),
            )
            assert result.validity_holds

    def test_unanimous_inputs_decide_that_bit(self, fast_params):
        for pattern, expected in (("all0", 0), ("all1", 1)):
            result = agree_via_election(
                n=N, alpha=ALPHA, inputs=pattern, seed=3, adversary="none",
                params=fast_params(N),
            )
            assert result.success
            assert result.decision == expected

    def test_costs_more_than_direct_agreement(self, fast_params):
        params = fast_params(N)
        reduced = agree_via_election(
            n=N, alpha=ALPHA, inputs="mixed", seed=5, adversary="none", params=params
        )
        direct = agree(
            n=N, alpha=ALPHA, inputs="mixed", seed=5, adversary="none", params=params
        )
        # Section V: the reduction pays the election's extra polylog factor.
        assert reduced.messages > 2 * direct.messages
