"""Unit tests for the protocol round schedules (repro.core.schedule)."""

import pytest

from repro.core.schedule import (
    AgreementSchedule,
    LeaderElectionSchedule,
    max_candidates_whp,
)
from repro.params import Params


class TestLeaderElectionSchedule:
    def test_phases_are_ordered(self):
        params = Params(n=512, alpha=0.5)
        schedule = LeaderElectionSchedule.from_params(params)
        assert 1 < schedule.iteration_start < schedule.last_round

    def test_iteration_rounds_are_four_apart(self):
        schedule = LeaderElectionSchedule.from_params(Params(n=512, alpha=0.5))
        assert schedule.iteration_round(1) - schedule.iteration_round(0) == 4
        assert schedule.iteration_round(0) == schedule.iteration_start

    def test_iteration_out_of_range(self):
        schedule = LeaderElectionSchedule.from_params(Params(n=512, alpha=0.5))
        with pytest.raises(ValueError):
            schedule.iteration_round(schedule.iterations)
        with pytest.raises(ValueError):
            schedule.iteration_round(-1)

    def test_forwarding_budget_covers_committee(self):
        params = Params(n=512, alpha=0.5)
        schedule = LeaderElectionSchedule.from_params(params)
        assert schedule.forwarding_rounds >= max_candidates_whp(params)

    def test_confirmation_deadline_covers_round_trip(self):
        schedule = LeaderElectionSchedule.from_params(Params(n=512, alpha=0.5))
        # Probe at r: referee(r+1), owner re-confirm(r+2), referee(r+3),
        # arrival(r+4) — the deadline must be past r+4.
        assert schedule.confirmation_deadline(10) >= 15

    def test_rounds_scale_with_inverse_alpha(self):
        fast = LeaderElectionSchedule.from_params(Params(n=512, alpha=1.0))
        slow = LeaderElectionSchedule.from_params(Params(n=512, alpha=0.25))
        assert slow.last_round > 2 * fast.last_round

    def test_last_round_has_tail_slack(self):
        schedule = LeaderElectionSchedule.from_params(Params(n=512, alpha=0.5))
        assert (
            schedule.last_round
            >= schedule.iteration_round(schedule.iterations - 1) + 4
        )


class TestAgreementSchedule:
    def test_two_round_iterations(self):
        schedule = AgreementSchedule.from_params(Params(n=512, alpha=0.5))
        assert schedule.iteration_length == 2
        assert schedule.last_round == 1 + 2 * schedule.iterations + 2

    def test_iterations_match_params(self):
        params = Params(n=512, alpha=0.25)
        schedule = AgreementSchedule.from_params(params)
        assert schedule.iterations == params.iterations


class TestMaxCandidatesWhp:
    def test_twice_the_mean(self):
        params = Params(n=1024, alpha=0.5)
        assert max_candidates_whp(params) >= 2 * params.expected_candidates - 1

    def test_at_least_one(self):
        params = Params(n=64, alpha=1.0, candidate_factor=0.01)
        assert max_candidates_whp(params) >= 1
