"""White-box unit tests of the agreement protocol state machine.

Drives a single :class:`AgreementProtocol` through a fake context, pinning
down Steps 0-2 of Section V-A: registration, zero propagation, the
once-ever forwarding rules, and the decide-1-at-the-end default.
"""

from repro.core.agreement import (
    MSG_VALUE,
    MSG_ZERO_TO_CANDIDATE,
    MSG_ZERO_TO_REFEREE,
    AgreementProtocol,
)
from repro.core.schedule import AgreementSchedule
from repro.params import Params
from repro.sim.message import Delivery, Message
from repro.types import Decision

from .test_le_statemachine import FakeContext


def make_node(input_bit, node_id=0, candidate=None):
    params = Params(n=64, alpha=0.5)
    schedule = AgreementSchedule.from_params(params)
    protocol = AgreementProtocol(node_id, params, schedule, input_bit)
    if candidate is not None:
        protocol.is_candidate = candidate
        protocol._referees = [1, 2, 3] if candidate else []
    return protocol, FakeContext(node_id=node_id)


def value_msg(bit, sender=9):
    return Delivery(sender=sender, message=Message(MSG_VALUE, (bit,)), round_received=2)


def zero_to_candidate(sender=9):
    return Delivery(
        sender=sender, message=Message(MSG_ZERO_TO_CANDIDATE, ()), round_received=3
    )


def zero_to_referee(sender=9):
    return Delivery(
        sender=sender, message=Message(MSG_ZERO_TO_REFEREE, ()), round_received=3
    )


class TestStep0:
    def test_zero_holder_decides_immediately(self):
        protocol, ctx = make_node(0)
        protocol.params = protocol.params.with_(candidate_factor=1e9)  # force candidacy
        protocol.on_start(ctx)
        assert protocol.is_candidate
        assert protocol.decision is Decision.ZERO
        values = [m for _, m in ctx.sent if m.kind == MSG_VALUE]
        assert all(m.fields == (0,) for m in values)

    def test_one_holder_registers_without_deciding(self):
        protocol, ctx = make_node(1)
        protocol.params = protocol.params.with_(candidate_factor=1e9)
        protocol.on_start(ctx)
        assert protocol.decision is Decision.UNDECIDED
        values = [m for _, m in ctx.sent if m.kind == MSG_VALUE]
        assert values and all(m.fields == (1,) for m in values)

    def test_non_candidate_stays_silent(self):
        protocol, ctx = make_node(0)
        protocol.params = protocol.params.with_(candidate_factor=1e-12)
        protocol.on_start(ctx)
        assert not protocol.is_candidate
        assert not ctx.sent
        assert ctx.idled

    def test_input_validated(self):
        import pytest

        params = Params(n=64, alpha=0.5)
        schedule = AgreementSchedule.from_params(params)
        with pytest.raises(ValueError):
            AgreementProtocol(0, params, schedule, 2)


class TestRefereeRole:
    def test_forwards_zero_to_registered_candidates_once(self):
        protocol, ctx = make_node(1)
        protocol.on_round(ctx, [value_msg(1, sender=10), value_msg(0, sender=11)])
        forwards = [
            dst for dst, m in ctx.sent if m.kind == MSG_ZERO_TO_CANDIDATE
        ]
        assert sorted(forwards) == [10, 11]
        # Once ever: a later zero triggers nothing.
        ctx.sent.clear()
        protocol.on_round(ctx, [zero_to_referee(sender=12)])
        assert not [m for _, m in ctx.sent if m.kind == MSG_ZERO_TO_CANDIDATE]

    def test_all_one_registrations_stay_silent(self):
        protocol, ctx = make_node(1)
        protocol.on_round(ctx, [value_msg(1, sender=10), value_msg(1, sender=11)])
        assert not ctx.sent

    def test_late_zero_reaches_earlier_registrants(self):
        protocol, ctx = make_node(1)
        protocol.on_round(ctx, [value_msg(1, sender=10)])
        assert not ctx.sent
        protocol.on_round(ctx, [zero_to_referee(sender=12)])
        forwards = [dst for dst, m in ctx.sent if m.kind == MSG_ZERO_TO_CANDIDATE]
        assert forwards == [10]


class TestCandidateZeroAdoption:
    def test_adopts_and_forwards_once(self):
        protocol, ctx = make_node(1, candidate=True)
        protocol.on_round(ctx, [zero_to_candidate()])
        assert protocol.decision is Decision.ZERO
        forwards = [m for _, m in ctx.sent if m.kind == MSG_ZERO_TO_REFEREE]
        assert len(forwards) == 3  # one per referee
        ctx.sent.clear()
        protocol.on_round(ctx, [zero_to_candidate(sender=20)])
        assert not ctx.sent  # once ever

    def test_zero_input_candidate_does_not_reforward(self):
        protocol, ctx = make_node(0, candidate=True)
        protocol._sent_zero = True  # registration carried the zero
        protocol.decision = Decision.ZERO
        protocol.on_round(ctx, [zero_to_candidate()])
        assert not [m for _, m in ctx.sent if m.kind == MSG_ZERO_TO_REFEREE]


class TestDecisionDefault:
    def test_undecided_candidate_decides_own_input_at_stop(self):
        protocol, ctx = make_node(1, candidate=True)
        protocol.on_stop(ctx)
        assert protocol.decision is Decision.ONE
        assert protocol.decided_bit == 1

    def test_passive_node_stays_undecided(self):
        protocol, ctx = make_node(1, candidate=False)
        protocol.on_stop(ctx)
        assert protocol.decision is Decision.UNDECIDED
        assert protocol.decided_bit is None
