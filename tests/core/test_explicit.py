"""Behavioural tests for the explicit extensions (repro.core.explicit)."""

import pytest

from repro.core import agree_explicit, elect_leader_explicit
from repro.rng import seed_sequence

N = 96
ALPHA = 0.5


class TestExplicitLeaderElection:
    def test_everyone_learns_the_leader(self, fast_params):
        result = elect_leader_explicit(
            n=N, alpha=ALPHA, seed=1, adversary="none", params=fast_params(N)
        )
        assert result.explicit_success
        assert result.knowledge_fraction == 1.0

    def test_explicit_ranks_cover_alive_nodes(self, fast_params):
        result = elect_leader_explicit(
            n=N, alpha=ALPHA, seed=2, adversary="staggered", params=fast_params(N)
        )
        assert set(result.explicit_ranks) == set(range(N)) - set(result.crashed)

    def test_explicit_costs_extra_linear_messages(self, fast_params):
        from repro.core import elect_leader

        params = fast_params(N)
        implicit = elect_leader(n=N, alpha=ALPHA, seed=3, adversary="none", params=params)
        explicit = elect_leader_explicit(
            n=N, alpha=ALPHA, seed=3, adversary="none", params=params
        )
        extra = explicit.messages - implicit.messages
        # Every candidate broadcasts to n-1 ports.
        assert extra == explicit.committee_size * (N - 1)

    def test_survives_crash_portfolio(self, fast_params):
        for adversary in ("eager", "random", "split"):
            ok = sum(
                elect_leader_explicit(
                    n=N, alpha=ALPHA, seed=seed, adversary=adversary, params=fast_params(N)
                ).success
                for seed in seed_sequence(5, 4)
            )
            assert ok >= 3

    def test_knowledge_consistent_with_implicit_agreement(self, fast_params):
        result = elect_leader_explicit(
            n=N, alpha=ALPHA, seed=7, adversary="random", params=fast_params(N)
        )
        if result.success:
            known = {r for r in result.explicit_ranks.values() if r is not None}
            assert known == {result.agreed_rank}


class TestExplicitAgreement:
    def test_everyone_learns_the_bit(self, fast_params):
        result = agree_explicit(
            n=N, alpha=ALPHA, inputs="mixed", seed=11, adversary="none",
            params=fast_params(N),
        )
        assert result.explicit_success
        assert result.knowledge_fraction == 1.0

    def test_explicit_bit_matches_implicit_decision(self, fast_params):
        result = agree_explicit(
            n=N, alpha=ALPHA, inputs="single1", seed=13, adversary="none",
            params=fast_params(N),
        )
        assert result.success
        bits = {b for b in result.explicit_bits.values() if b is not None}
        assert bits == {result.decision}

    def test_all_zero_broadcasts_zero(self, fast_params):
        result = agree_explicit(
            n=N, alpha=ALPHA, inputs="all0", seed=17, adversary="none",
            params=fast_params(N),
        )
        assert result.explicit_success
        assert result.decision == 0

    def test_survives_crash_portfolio(self, fast_params):
        for adversary in ("eager", "random", "adaptive"):
            ok = sum(
                agree_explicit(
                    n=N, alpha=ALPHA, inputs="mixed", seed=seed, adversary=adversary,
                    params=fast_params(N),
                ).success
                for seed in seed_sequence(19, 4)
            )
            assert ok >= 3

    def test_explicit_message_overhead_is_committee_broadcast(self, fast_params):
        from repro.core import agree

        params = fast_params(N)
        implicit = agree(
            n=N, alpha=ALPHA, inputs="all1", seed=23, adversary="none", params=params
        )
        explicit = agree_explicit(
            n=N, alpha=ALPHA, inputs="all1", seed=23, adversary="none", params=params
        )
        extra = explicit.messages - implicit.messages
        assert extra == explicit.committee_size * (N - 1)
