"""Edge-case and boundary tests for the core protocols."""

import math

import pytest

from repro.core import agree, elect_leader
from repro.errors import ConfigurationError
from repro.params import MIN_NETWORK_SIZE, Params, alpha_floor


class TestTinyNetworks:
    def test_smallest_supported_network(self):
        result = elect_leader(n=MIN_NETWORK_SIZE, alpha=1.0, seed=1, adversary="none")
        assert result.success

    def test_small_network_agreement(self):
        result = agree(n=MIN_NETWORK_SIZE, alpha=1.0, inputs="all0", seed=1)
        assert result.success
        assert result.decision == 0

    def test_below_minimum_rejected(self):
        with pytest.raises(ConfigurationError):
            elect_leader(n=4, alpha=1.0, seed=1)


class TestAlphaBoundaries:
    def test_alpha_one_is_fault_free(self):
        result = elect_leader(n=64, alpha=1.0, seed=2, adversary="random")
        assert result.faulty == set()
        assert result.strict_success

    def test_alpha_at_floor(self):
        n = 128
        alpha = min(1.0, alpha_floor(n) * 1.01)
        result = agree(n=n, alpha=alpha, inputs="mixed", seed=3, adversary="random")
        assert result.success

    def test_candidate_probability_saturates_at_small_n_low_alpha(self):
        # When 6 log n/(alpha n) >= 1 every node is a candidate; the
        # protocol must still work (committee == whole network).
        n = 64
        alpha = min(1.0, alpha_floor(n) * 1.05)
        params = Params(n=n, alpha=alpha)
        assert params.candidate_probability == 1.0
        result = agree(n=n, alpha=alpha, inputs="single0", seed=4, adversary="random")
        assert result.success


class TestNonPowerOfTwo:
    @pytest.mark.parametrize("n", [97, 130, 250])
    def test_odd_sizes(self, n, fast_params):
        result = elect_leader(
            n=n, alpha=0.5, seed=5, adversary="staggered", params=fast_params(n)
        )
        assert result.success


class TestExtraRounds:
    def test_extra_rounds_do_not_change_outcome(self, fast_params):
        params = fast_params(96)
        base = elect_leader(n=96, alpha=0.5, seed=6, adversary="none", params=params)
        extended = elect_leader(
            n=96, alpha=0.5, seed=6, adversary="none", params=params, extra_rounds=200
        )
        # The protocol is quiescent after convergence: more rounds change
        # nothing but the nominal horizon — the executed rounds are equal.
        assert extended.messages == base.messages
        assert extended.agreed_rank == base.agreed_rank
        assert extended.horizon == base.horizon + 200
        assert extended.rounds == base.rounds


class TestFaultyCountOverride:
    def test_partial_fault_budget(self, fast_params):
        result = elect_leader(
            n=96, alpha=0.5, seed=7, adversary="eager",
            params=fast_params(96), faulty_count=5,
        )
        assert len(result.faulty) == 5
        assert result.success

    def test_agreement_zero_faults_under_crash_adversary(self, fast_params):
        result = agree(
            n=96, alpha=0.5, inputs="mixed", seed=8, adversary="random",
            params=fast_params(96), faulty_count=0,
        )
        assert result.metrics.crashes == 0
        assert result.success


class TestDeterminismEndToEnd:
    def test_identical_runs(self, fast_params):
        a = elect_leader(
            n=96, alpha=0.5, seed=9, adversary="split", params=fast_params(96)
        )
        b = elect_leader(
            n=96, alpha=0.5, seed=9, adversary="split", params=fast_params(96)
        )
        assert a.messages == b.messages
        assert a.agreed_rank == b.agreed_rank
        assert a.crashed == b.crashed
        assert a.summary() == b.summary()

    def test_seed_changes_committee(self, fast_params):
        a = elect_leader(n=96, alpha=0.5, seed=10, params=fast_params(96))
        b = elect_leader(n=96, alpha=0.5, seed=11, params=fast_params(96))
        assert a.candidates_all != b.candidates_all
