"""Unit tests for the explicit-result evaluation logic (no network runs)."""

from repro.core.results import (
    ExplicitAgreementResult,
    ExplicitLeaderElectionResult,
)
from repro.sim.metrics import Metrics
from repro.types import Decision


def le_result(**overrides):
    base = dict(
        n=8,
        alpha=0.5,
        seed=0,
        adversary="test",
        faulty=set(),
        crashed={},
        metrics=Metrics(),
        trace=None,
        elected_alive=[3],
        candidates_alive=[3, 5],
        beliefs={3: 77, 5: 77},
        ranks={3: 77, 5: 12},
    )
    base.update(overrides)
    return ExplicitLeaderElectionResult(**base)


def ag_result(**overrides):
    base = dict(
        n=8,
        alpha=0.5,
        seed=0,
        adversary="test",
        inputs=[0, 1, 1, 1, 0, 1, 1, 1],
        faulty=set(),
        crashed={},
        metrics=Metrics(),
        trace=None,
        decisions={0: Decision.ZERO, 4: Decision.ZERO},
        candidates_alive=[0, 4],
    )
    base.update(overrides)
    return ExplicitAgreementResult(**base)


class TestExplicitLeaderElection:
    def test_full_knowledge_succeeds(self):
        result = le_result(explicit_ranks={u: 77 for u in range(8)})
        assert result.explicit_success
        assert result.knowledge_fraction == 1.0

    def test_partial_knowledge_fails_explicit(self):
        ranks = {u: 77 for u in range(8)}
        ranks[6] = None
        result = le_result(explicit_ranks=ranks)
        assert not result.explicit_success
        assert result.knowledge_fraction == 7 / 8

    def test_wrong_rank_fails(self):
        ranks = {u: 77 for u in range(8)}
        ranks[6] = 12
        assert not le_result(explicit_ranks=ranks).explicit_success

    def test_no_knowledge_at_all(self):
        result = le_result(explicit_ranks={})
        assert not result.explicit_success
        assert result.knowledge_fraction == 0.0

    def test_implicit_failure_blocks_explicit(self):
        result = le_result(
            elected_alive=[],
            explicit_ranks={u: 77 for u in range(8)},
        )
        assert not result.explicit_success


class TestExplicitAgreement:
    def test_full_knowledge_succeeds(self):
        result = ag_result(explicit_bits={u: 0 for u in range(8)})
        assert result.explicit_success
        assert result.knowledge_fraction == 1.0

    def test_conflicting_bit_fails(self):
        bits = {u: 0 for u in range(8)}
        bits[2] = 1
        assert not ag_result(explicit_bits=bits).explicit_success

    def test_empty_bits_fail(self):
        result = ag_result(explicit_bits={})
        assert not result.explicit_success
        assert result.knowledge_fraction == 0.0

    def test_implicit_failure_blocks_explicit(self):
        result = ag_result(
            decisions={0: Decision.ZERO, 4: Decision.ONE},
            explicit_bits={u: 0 for u in range(8)},
        )
        assert not result.explicit_success
