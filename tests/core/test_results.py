"""Unit tests for result evaluation logic (repro.core.results).

These build result objects directly (no network runs) so each success
condition's edge cases can be pinned down precisely.
"""

from repro.core.results import AgreementResult, LeaderElectionResult
from repro.sim.metrics import Metrics
from repro.types import Decision


def le_result(**overrides):
    base = dict(
        n=8,
        alpha=0.5,
        seed=0,
        adversary="test",
        faulty=set(),
        crashed={},
        metrics=Metrics(),
        trace=None,
    )
    base.update(overrides)
    return LeaderElectionResult(**base)


def ag_result(**overrides):
    base = dict(
        n=8,
        alpha=0.5,
        seed=0,
        adversary="test",
        inputs=[0, 1, 1, 1, 0, 1, 1, 1],
        faulty=set(),
        crashed={},
        metrics=Metrics(),
        trace=None,
    )
    base.update(overrides)
    return AgreementResult(**base)


class TestLeaderElectionSuccess:
    def test_unique_alive_leader(self):
        result = le_result(
            elected_alive=[3],
            candidates_alive=[3, 5],
            beliefs={3: 77, 5: 77},
            ranks={3: 77, 5: 12},
        )
        assert result.strict_success
        assert result.success
        assert result.leader_node == 3

    def test_two_alive_leaders_fail(self):
        result = le_result(
            elected_alive=[3, 5],
            candidates_alive=[3, 5],
            beliefs={3: 77, 5: 12},
            ranks={3: 77, 5: 12},
        )
        assert not result.success

    def test_no_leader_fails(self):
        result = le_result(
            elected_alive=[],
            candidates_alive=[3, 5],
            beliefs={3: 77, 5: 77},
            ranks={3: 77, 5: 12},
        )
        assert not result.strict_success
        assert not result.success

    def test_disagreeing_beliefs_fail(self):
        result = le_result(
            elected_alive=[3],
            candidates_alive=[3, 5],
            beliefs={3: 77, 5: 12},
            ranks={3: 77, 5: 12},
        )
        assert not result.success

    def test_posthumous_leader_counts(self):
        # Definition 1 footnote: the winner crashed after electing itself.
        result = le_result(
            elected_alive=[],
            elected_crashed=[2],
            crashed={2: 9},
            candidates_alive=[3, 5],
            beliefs={3: 50, 5: 50},
            ranks={2: 50, 3: 77, 5: 12},
        )
        assert not result.strict_success
        assert result.success
        assert result.leader_node == 2

    def test_two_posthumous_leaders_fail(self):
        result = le_result(
            elected_crashed=[2, 4],
            crashed={2: 9, 4: 9},
            candidates_alive=[3],
            beliefs={3: 50},
            ranks={2: 50, 4: 60, 3: 77},
        )
        assert not result.success

    def test_leader_is_faulty_flag(self):
        result = le_result(
            elected_alive=[3],
            candidates_alive=[3],
            beliefs={3: 77},
            ranks={3: 77},
            faulty={3},
        )
        assert result.leader_is_faulty is True

    def test_leader_is_faulty_none_without_leader(self):
        assert le_result().leader_is_faulty is None

    def test_summary_contains_headline_fields(self):
        summary = le_result().summary()
        for key in ("n", "alpha", "success", "messages", "rounds"):
            assert key in summary


class TestAgreementSuccess:
    def test_unanimous_zero(self):
        result = ag_result(
            decisions={0: Decision.ZERO, 1: Decision.ZERO, 2: Decision.UNDECIDED}
        )
        assert result.agreement_holds
        assert result.validity_holds
        assert result.success
        assert result.decision == 0

    def test_split_decision_fails(self):
        result = ag_result(decisions={0: Decision.ZERO, 1: Decision.ONE})
        assert not result.agreement_holds
        assert not result.success
        assert result.decision is None

    def test_nobody_decided_fails(self):
        result = ag_result(decisions={0: Decision.UNDECIDED})
        assert not result.agreement_holds
        assert not result.success

    def test_validity_checks_inputs(self):
        # Deciding 0 with all-1 inputs violates validity.
        result = ag_result(
            inputs=[1] * 8,
            decisions={0: Decision.ZERO},
        )
        assert result.agreement_holds
        assert not result.validity_holds
        assert not result.success

    def test_decided_bits_only_counts_decided(self):
        result = ag_result(
            decisions={0: Decision.ONE, 1: Decision.UNDECIDED, 2: Decision.ONE}
        )
        assert result.decided_bits == [1, 1]

    def test_summary_contains_headline_fields(self):
        summary = ag_result().summary()
        for key in ("n", "alpha", "success", "decision", "messages"):
            assert key in summary
