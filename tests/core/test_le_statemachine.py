"""White-box unit tests of the leader-election candidate state machine.

These drive a single :class:`LeaderElectionProtocol` instance through a
fake context, pinning down the Step 1-4 transitions of Section IV-A
without a network: marking, adoption, pruning, probing, and timeouts.
"""

import random

import pytest

from repro.core.leader_election import (
    MSG_AGG,
    MSG_CONFIRM,
    MSG_PROPOSE,
    MSG_RANK,
    LeaderElectionProtocol,
)
from repro.core.schedule import LeaderElectionSchedule
from repro.params import Params
from repro.sim.message import Delivery, Message
from repro.types import NodeState


class FakeContext:
    """Minimal stand-in for repro.sim.node.Context."""

    def __init__(self, node_id=0, n=64, seed=0):
        self.node_id = node_id
        self.n = n
        self.rng = random.Random(seed)
        self.round = 1
        self.sent = []  # (dst, Message)
        self.idled = False
        self.woken_at = None

    def send(self, dst, message):
        self.sent.append((dst, message))

    def send_many(self, dsts, message):
        for dst in dsts:
            self.send(dst, message)

    def sample_nodes(self, k):
        return [(self.node_id + 1 + i) % self.n for i in range(k)]

    def all_ports(self):
        return [u for u in range(self.n) if u != self.node_id]

    def learn(self, node):
        pass

    def idle(self):
        self.idled = True

    def wake_at(self, round_):
        self.woken_at = round_

    def halt(self):
        pass


def make_candidate(rank=100, known_ranks=(100, 200, 300)):
    """Build a candidate mid-protocol with a populated rankList."""
    params = Params(n=64, alpha=0.5)
    schedule = LeaderElectionSchedule.from_params(params)
    protocol = LeaderElectionProtocol(0, params, schedule)
    protocol.rank = rank
    protocol.is_candidate = True
    protocol._rank_list = set(known_ranks)
    protocol._referees = [1, 2, 3]
    ctx = FakeContext()
    ctx.round = schedule.iteration_start
    return protocol, ctx, schedule


def agg(flag, rank, sender=9, round_=0):
    return Delivery(sender=sender, message=Message(MSG_AGG, (int(flag), rank)),
                    round_received=round_)


class TestStep1Propose:
    def test_proposes_minimum_of_rank_list(self):
        protocol, ctx, _ = make_candidate(rank=200, known_ranks=(100, 200, 300))
        protocol.on_round(ctx, [])
        proposals = [m for _, m in ctx.sent if m.kind == MSG_PROPOSE]
        assert proposals
        assert proposals[0].fields == (200, 100)  # (own id, proposed min)
        assert not protocol._marked

    def test_self_proposal_marks_leader(self):
        protocol, ctx, _ = make_candidate(rank=100, known_ranks=(100, 200))
        protocol.on_round(ctx, [])
        assert protocol._marked
        assert protocol.state is NodeState.ELECTED
        assert protocol.leader_rank == 100

    def test_no_proposal_before_iteration_start(self):
        protocol, ctx, schedule = make_candidate()
        ctx.round = schedule.iteration_start - 5
        protocol.on_round(ctx, [])
        assert not ctx.sent
        assert ctx.woken_at == schedule.iteration_start

    def test_proposal_sent_to_every_referee(self):
        protocol, ctx, _ = make_candidate()
        protocol.on_round(ctx, [])
        assert {dst for dst, _ in ctx.sent} == {1, 2, 3}


class TestStep3Aggregates:
    def test_owner_flagged_maximum_is_adopted(self):
        protocol, ctx, _ = make_candidate(rank=100, known_ranks=(100, 300))
        protocol.on_round(ctx, [agg(True, 300)])
        assert protocol.leader_rank == 300
        assert protocol._confirmed
        assert not protocol._marked
        # Adoption echoes the winner once (Step 3).
        echoes = [m for _, m in ctx.sent if m.kind == MSG_CONFIRM]
        assert echoes and echoes[0].fields == (100, 300)

    def test_unflagged_known_maximum_is_supported(self):
        protocol, ctx, _ = make_candidate(rank=100, known_ranks=(100, 300))
        protocol.on_round(ctx, [agg(False, 300)])
        assert protocol.leader_rank == 300
        assert not protocol._confirmed
        assert protocol._outstanding == 300
        supports = [m for _, m in ctx.sent if m.kind == MSG_CONFIRM]
        assert supports and supports[0].fields == (100, 300)

    def test_higher_rank_prunes_smaller(self):
        protocol, ctx, _ = make_candidate(rank=100, known_ranks=(100, 200, 300))
        protocol.on_round(ctx, [agg(True, 200)])
        assert protocol._rank_list == {200, 300}

    def test_higher_rank_unmarks_leader(self):
        protocol, ctx, _ = make_candidate(rank=100, known_ranks=(100,))
        protocol.on_round(ctx, [])  # proposes itself, marks
        assert protocol._marked
        protocol.on_round(ctx, [agg(True, 500)])
        assert not protocol._marked
        assert protocol.leader_rank == 500

    def test_own_confirmation_establishes_leadership(self):
        protocol, ctx, _ = make_candidate(rank=100, known_ranks=(100,))
        protocol.on_round(ctx, [agg(True, 100)])
        assert protocol._marked
        assert protocol._confirmed
        assert ctx.idled

    def test_probe_of_own_rank_triggers_reconfirmation(self):
        # A (0, own-rank) aggregate means someone is probing us: re-CONF.
        protocol, ctx, _ = make_candidate(rank=100, known_ranks=(100,))
        protocol.on_round(ctx, [agg(False, 100)])
        confs = [m for _, m in ctx.sent if m.kind == MSG_CONFIRM]
        assert (100, 100) in [m.fields for m in confs]
        assert protocol._marked

    def test_stale_lower_echo_ignored_when_confirmed(self):
        protocol, ctx, _ = make_candidate(rank=100, known_ranks=(100, 300))
        protocol.on_round(ctx, [agg(True, 300)])  # confirmed on 300
        sent_before = len(ctx.sent)
        protocol.on_round(ctx, [agg(False, 200)])
        assert protocol.leader_rank == 300
        assert protocol._confirmed


class TestStep4Timeout:
    def test_timeout_removes_dead_rank_and_advances(self):
        protocol, ctx, schedule = make_candidate(rank=300, known_ranks=(100, 300))
        protocol.on_round(ctx, [])  # proposes 100
        assert protocol._outstanding == 100
        ctx.round = protocol._deadline
        ctx.sent.clear()
        protocol.on_round(ctx, [])
        # 100 presumed crashed; next minimum (own rank 300) proposed.
        assert 100 not in protocol._rank_list
        proposals = [m for _, m in ctx.sent if m.kind == MSG_PROPOSE]
        assert proposals and proposals[0].fields == (300, 300)
        assert protocol._marked  # proposed own rank

    def test_own_rank_timeout_retries_confirmation(self):
        protocol, ctx, schedule = make_candidate(rank=100, known_ranks=(100,))
        protocol.on_round(ctx, [])  # proposes itself
        ctx.round = protocol._deadline
        ctx.sent.clear()
        protocol.on_round(ctx, [])
        confs = [m for _, m in ctx.sent if m.kind == MSG_CONFIRM]
        assert (100, 100) in [m.fields for m in confs]
        assert 100 in protocol._rank_list  # own rank never disowned


class TestRefereeRole:
    def test_registration_exchanges_rank_lists(self):
        params = Params(n=64, alpha=0.5)
        schedule = LeaderElectionSchedule.from_params(params)
        referee = LeaderElectionProtocol(5, params, schedule)
        referee.rank = 999
        ctx = FakeContext(node_id=5)
        inbox = [
            Delivery(sender=10, message=Message(MSG_RANK, (111,)), round_received=2),
            Delivery(sender=11, message=Message(MSG_RANK, (222,)), round_received=2),
        ]
        referee.on_round(ctx, inbox)
        lists = [(dst, m.fields[0]) for dst, m in ctx.sent if m.kind == "LE_LIST"]
        assert (10, 222) in lists
        assert (11, 111) in lists

    def test_aggregation_forwards_max_with_owner_flag(self):
        params = Params(n=64, alpha=0.5)
        schedule = LeaderElectionSchedule.from_params(params)
        referee = LeaderElectionProtocol(5, params, schedule)
        referee.rank = 999
        ctx = FakeContext(node_id=5)
        referee.on_round(
            ctx,
            [Delivery(sender=10, message=Message(MSG_RANK, (111,)), round_received=2)],
        )
        ctx.sent.clear()
        referee.on_round(
            ctx,
            [
                Delivery(
                    sender=10,
                    message=Message(MSG_PROPOSE, (111, 111)),
                    round_received=3,
                )
            ],
        )
        aggs = [(dst, m.fields) for dst, m in ctx.sent if m.kind == MSG_AGG]
        assert aggs == [(10, (1, 111))]  # owner-flagged maximum

    def test_non_owner_proposal_not_flagged(self):
        params = Params(n=64, alpha=0.5)
        schedule = LeaderElectionSchedule.from_params(params)
        referee = LeaderElectionProtocol(5, params, schedule)
        referee.rank = 999
        ctx = FakeContext(node_id=5)
        referee.on_round(
            ctx,
            [Delivery(sender=10, message=Message(MSG_RANK, (111,)), round_received=2)],
        )
        ctx.sent.clear()
        referee.on_round(
            ctx,
            [
                Delivery(
                    sender=10,
                    message=Message(MSG_PROPOSE, (111, 500)),
                    round_received=3,
                )
            ],
        )
        aggs = [m.fields for _, m in ctx.sent if m.kind == MSG_AGG]
        assert aggs == [(0, 500)]
