"""Unit tests for rank drawing (repro.core.ranks)."""

import random

import pytest

from repro.core.ranks import draw_rank, rank_collision_probability


class TestDrawRank:
    def test_in_range(self):
        rng = random.Random(0)
        for _ in range(200):
            rank = draw_rank(rng, 16)
            assert 1 <= rank <= 16**4

    def test_validates_n(self):
        with pytest.raises(ValueError):
            draw_rank(random.Random(0), 1)

    def test_validates_exponent(self):
        with pytest.raises(ValueError):
            draw_rank(random.Random(0), 16, exponent=0)

    def test_deterministic_per_rng_state(self):
        assert draw_rank(random.Random(5), 64) == draw_rank(random.Random(5), 64)

    def test_distinct_whp_empirically(self):
        rng = random.Random(7)
        ranks = [draw_rank(rng, 256) for _ in range(256)]
        assert len(set(ranks)) == 256


class TestCollisionProbability:
    def test_union_bound_formula(self):
        assert rank_collision_probability(100) == pytest.approx(
            (100 * 99 / 2) / 100**4
        )

    def test_tiny_for_paper_exponent(self):
        assert rank_collision_probability(2**20) < 1e-6

    def test_capped_at_one(self):
        assert rank_collision_probability(100, exponent=1) == 1.0

    def test_zero_for_single_node(self):
        assert rank_collision_probability(1) == 0.0
