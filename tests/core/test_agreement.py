"""Behavioural tests for the Section V-A agreement protocol."""

import pytest

from repro.core import agree, make_inputs
from repro.rng import seed_sequence
from repro.types import Decision

N = 96
ALPHA = 0.5


def run(seed, inputs="mixed", adversary="random", fast_params=None, **kwargs):
    return agree(
        n=N,
        alpha=ALPHA,
        inputs=inputs,
        seed=seed,
        adversary=adversary,
        params=fast_params,
        **kwargs,
    )


class TestValidity:
    def test_all_zero_decides_zero(self, fast_params):
        result = run(1, inputs="all0", fast_params=fast_params(N))
        assert result.success
        assert result.decision == 0

    def test_all_one_decides_one(self, fast_params):
        result = run(2, inputs="all1", fast_params=fast_params(N))
        assert result.success
        assert result.decision == 1

    def test_all_one_is_nearly_silent_after_registration(self, fast_params):
        # With unanimous 1-inputs no zero ever propagates: the only
        # messages are the candidate registrations.
        params = fast_params(N)
        result = run(3, inputs="all1", adversary="none", fast_params=params)
        expected = result.committee_size * params.referee_count
        assert result.messages == expected

    def test_mixed_inputs_decide_some_input(self, fast_params):
        result = run(4, inputs="mixed", fast_params=fast_params(N))
        assert result.success
        assert result.decision in (0, 1)

    def test_decision_is_always_somebodys_input(self, fast_params):
        for seed in seed_sequence(5, 10):
            result = run(seed, inputs="single0", fast_params=fast_params(N))
            assert result.validity_holds


class TestZeroBias:
    def test_zero_wins_when_candidate_holds_it(self, fast_params):
        # Force the zero onto a specific node and make everyone candidate-
        # eligible enough that the committee sees it often.
        for seed in seed_sequence(7, 10):
            result = run(seed, inputs="mixed", adversary="none", fast_params=fast_params(N))
            candidate_bits = {result.inputs[u] for u in result.candidates_all}
            expected = 0 if 0 in candidate_bits else 1
            assert result.decision == expected

    def test_single_zero_outside_committee_yields_one(self, fast_params):
        # If the lone zero-holder is not a candidate, the committee decides 1
        # (valid: 1 is someone's input).
        inputs = [1] * N
        inputs[0] = 0
        result = run(11, inputs=inputs, adversary="none", fast_params=fast_params(N))
        if 0 not in result.candidates_all:
            assert result.decision == 1
        else:
            assert result.decision == 0
        assert result.success


class TestUnderCrashes:
    @pytest.mark.parametrize(
        "adversary", ["eager", "lazy", "random", "staggered", "split", "adaptive"]
    )
    def test_succeeds_against_portfolio(self, fast_params, adversary):
        successes = sum(
            run(seed, adversary=adversary, fast_params=fast_params(N)).success
            for seed in seed_sequence(13, 5)
        )
        assert successes >= 4

    def test_agreement_over_alive_nodes_only(self, fast_params):
        result = run(17, adversary="eager", fast_params=fast_params(N))
        assert set(result.decisions) == set(range(N)) - set(result.crashed)

    def test_implicit_agreement_leaves_passives_undecided(self, fast_params):
        result = run(19, adversary="none", fast_params=fast_params(N))
        passive = [
            u
            for u in result.decisions
            if u not in result.candidates_all
        ]
        assert passive  # there are passive nodes at these sizes
        assert all(result.decisions[u] is Decision.UNDECIDED for u in passive)

    def test_crashing_zero_holders_can_flip_to_one(self, fast_params):
        # With eager crashes the zero might die with its holders; the
        # committee must still agree (on either value).
        for seed in seed_sequence(23, 10):
            result = run(seed, inputs="single0", adversary="eager", fast_params=fast_params(N))
            assert result.agreement_holds


class TestInputs:
    def test_explicit_vector_roundtrip(self, fast_params):
        inputs = [u % 2 for u in range(N)]
        result = run(29, inputs=inputs, fast_params=fast_params(N))
        assert list(result.inputs) == inputs

    def test_make_inputs_patterns(self):
        assert make_inputs(10, "all0") == [0] * 10
        assert make_inputs(10, "all1") == [1] * 10
        assert sum(make_inputs(10, "single0")) == 9
        assert sum(make_inputs(10, "single1")) == 1
        mixed = make_inputs(1000, "mixed", seed=1)
        assert 300 < sum(mixed) < 700

    def test_make_inputs_deterministic_per_seed(self):
        assert make_inputs(100, "mixed", seed=5) == make_inputs(100, "mixed", seed=5)
        assert make_inputs(100, "mixed", seed=5) != make_inputs(100, "mixed", seed=6)

    def test_make_inputs_validates(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            make_inputs(10, "bogus")
        with pytest.raises(ConfigurationError):
            make_inputs(10, [0, 1])  # wrong length
        with pytest.raises(ConfigurationError):
            make_inputs(3, [0, 1, 2])  # not bits


class TestComplexity:
    def test_messages_within_theorem_bound_scaled(self, paper_params):
        params = paper_params(128)
        result = agree(
            n=128, alpha=0.5, inputs="mixed", seed=31, adversary="none", params=params
        )
        assert result.messages <= 60 * params.agreement_message_bound()

    def test_single_bit_payloads(self, fast_params):
        # Theorem 5.1 counts bits: all agreement messages are O(1) fields.
        result = run(37, fast_params=fast_params(N))
        assert result.metrics.bits_sent <= 16 * result.messages

    def test_cheaper_than_leader_election(self, fast_params, paper_params):
        from repro.core import elect_leader

        params = paper_params(128)
        ag = agree(n=128, alpha=0.5, inputs="mixed", seed=41, params=params)
        le = elect_leader(n=128, alpha=0.5, seed=41, params=params)
        assert ag.messages < le.messages
