"""Unit tests for seeded randomness (repro.rng)."""

from repro.rng import RngFactory, derive_seed, seed_sequence


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "node", 7) == derive_seed(42, "node", 7)

    def test_label_sensitivity(self):
        assert derive_seed(42, "node", 7) != derive_seed(42, "node", 8)
        assert derive_seed(42, "node") != derive_seed(42, "adversary")

    def test_master_seed_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_64_bit_range(self):
        for seed in (0, 1, 2**63):
            assert 0 <= derive_seed(seed, "a") < 2**64

    def test_no_label_concatenation_ambiguity(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")


class TestRngFactory:
    def test_streams_are_independent(self):
        factory = RngFactory(9)
        a = factory.node_stream(0)
        b = factory.node_stream(1)
        assert [a.random() for _ in range(4)] != [b.random() for _ in range(4)]

    def test_streams_are_reproducible(self):
        first = RngFactory(9).node_stream(3).random()
        second = RngFactory(9).node_stream(3).random()
        assert first == second

    def test_named_streams_do_not_collide(self):
        factory = RngFactory(5)
        values = {
            factory.adversary_stream().random(),
            factory.engine_stream().random(),
            factory.node_stream(0).random(),
        }
        assert len(values) == 3

    def test_spawn_creates_distinct_subspace(self):
        factory = RngFactory(5)
        child = factory.spawn("trial", 1)
        assert child.node_stream(0).random() != factory.node_stream(0).random()


class TestSeedSequence:
    def test_yields_count(self):
        assert len(list(seed_sequence(0, 10))) == 10

    def test_prefix_stability(self):
        # Trial i's seed must not depend on the total number of trials.
        assert list(seed_sequence(7, 3)) == list(seed_sequence(7, 10))[:3]

    def test_distinct(self):
        seeds = list(seed_sequence(7, 100))
        assert len(set(seeds)) == 100
