"""Unit tests for the bound formulas (repro.lowerbound.bounds)."""

import math

import pytest

from repro.lowerbound.bounds import (
    agreement_upper_bound,
    le_upper_bound,
    lower_bound_messages,
    min_initiators,
    success_probability_threshold,
)


class TestFormulas:
    def test_lower_bound_value(self):
        assert lower_bound_messages(1024, 0.25) == pytest.approx(32 / 0.25**1.5)

    def test_lower_bound_grows_with_faults(self):
        assert lower_bound_messages(1024, 0.1) > lower_bound_messages(1024, 0.9)

    def test_ordering_lower_below_agreement_below_le(self):
        for n in (256, 4096):
            for alpha in (0.1, 0.5, 1.0):
                lb = lower_bound_messages(n, alpha)
                ag = agreement_upper_bound(n, alpha)
                le = le_upper_bound(n, alpha)
                assert lb < ag < le

    def test_gap_is_polylog(self):
        # agreement bound / lower bound == log^{3/2} n exactly.
        n, alpha = 4096, 0.5
        ratio = agreement_upper_bound(n, alpha) / lower_bound_messages(n, alpha)
        assert ratio == pytest.approx(math.log(n) ** 1.5)

    def test_min_initiators(self):
        assert min_initiators(0.5) == 1.0
        assert min_initiators(0.05) == 10.0

    def test_threshold_is_two_over_e(self):
        assert success_probability_threshold() == pytest.approx(2 / math.e)

    def test_validation(self):
        with pytest.raises(ValueError):
            lower_bound_messages(1, 0.5)
        with pytest.raises(ValueError):
            lower_bound_messages(64, 0.0)
        with pytest.raises(ValueError):
            min_initiators(0.0)
