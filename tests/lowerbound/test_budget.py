"""Tests for budget-capped runs (repro.lowerbound.budget)."""

import pytest

from repro.lowerbound.budget import (
    budget_curve,
    run_budgeted_agreement,
    run_budgeted_election,
)


class TestBudgetedRuns:
    def test_budget_respected_for_agreement(self):
        result = run_budgeted_agreement(96, 0.5, budget=50, seed=1)
        assert result.messages <= 50

    def test_budget_respected_for_election(self):
        result = run_budgeted_election(96, 0.5, budget=50, seed=1)
        assert result.messages <= 50

    def test_zero_budget_sends_nothing(self):
        result = run_budgeted_agreement(96, 0.5, budget=0, seed=2)
        assert result.messages == 0

    def test_huge_budget_is_no_op(self):
        capped = run_budgeted_agreement(96, 0.5, budget=10**9, seed=3)
        from repro.core import agree

        free = agree(n=96, alpha=0.5, inputs="mixed", seed=3, adversary="random")
        assert capped.messages == free.messages
        assert capped.success == free.success


class TestBudgetCurve:
    def test_curve_shape(self):
        curve = budget_curve(
            "agreement", n=96, alpha=0.5, multipliers=[0.1, 50.0],
            trials=5, master_seed=4,
        )
        assert set(curve) == {0.1, 50.0}
        starved = curve[0.1]
        ample = curve[50.0]
        assert starved.rate <= ample.rate

    def test_unit_override(self):
        curve = budget_curve(
            "agreement", n=96, alpha=0.5, multipliers=[1.0],
            trials=3, master_seed=5, unit=10.0,
        )
        assert 1.0 in curve

    def test_unknown_problem_rejected(self):
        with pytest.raises(ValueError):
            budget_curve("sorting", n=96, alpha=0.5, multipliers=[1.0])
