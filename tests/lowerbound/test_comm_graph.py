"""Unit tests for communication graphs (repro.lowerbound.comm_graph)."""

from repro.lowerbound.comm_graph import CommunicationGraph, communication_graph
from repro.sim.trace import Trace, TraceEvent


def _trace(edges):
    trace = Trace()
    for src, dst, round_ in edges:
        trace.record(
            TraceEvent(round=round_, kind="send", src=src, dst=dst, message_kind="X")
        )
        trace.record(
            TraceEvent(round=round_, kind="deliver", src=src, dst=dst, message_kind="X")
        )
    return trace


class TestConstruction:
    def test_from_trace(self):
        graph = communication_graph(_trace([(0, 1, 1), (1, 2, 2)]), n=4)
        assert graph.edges == [(0, 1, 1), (1, 2, 2)]

    def test_only_delivered_messages_count(self):
        trace = Trace()
        trace.record(TraceEvent(round=1, kind="send", src=0, dst=1, message_kind="X"))
        trace.record(TraceEvent(round=1, kind="drop", src=0, dst=1, message_kind="X"))
        graph = communication_graph(trace, n=4)
        assert graph.edges == []

    def test_communicating_nodes(self):
        graph = CommunicationGraph(n=8, edges=[(0, 1, 1), (2, 3, 1)])
        assert graph.nodes_communicating == {0, 1, 2, 3}


class TestComponents:
    def test_undirected_components(self):
        graph = CommunicationGraph(
            n=8, edges=[(0, 1, 1), (1, 2, 1), (4, 5, 1)]
        )
        components = sorted(
            sorted(component) for component in graph.undirected_components()
        )
        assert components == [[0, 1, 2], [4, 5]]

    def test_successors(self):
        graph = CommunicationGraph(n=4, edges=[(0, 1, 1), (0, 2, 1), (0, 1, 2)])
        assert graph.successors() == {0: {1, 2}}


class TestFirstContact:
    def test_keeps_earlier_direction(self):
        graph = CommunicationGraph(n=4, edges=[(0, 1, 1), (1, 0, 3)])
        fc = graph.first_contact_graph()
        assert fc.edges == [(0, 1, 1)]

    def test_simultaneous_contact_drops_both(self):
        # Neither message strictly precedes the other.
        graph = CommunicationGraph(n=4, edges=[(0, 1, 2), (1, 0, 2)])
        assert graph.first_contact_graph().edges == []

    def test_unrelated_edges_survive(self):
        graph = CommunicationGraph(n=4, edges=[(0, 1, 1), (2, 3, 2)])
        assert graph.first_contact_graph().edges == [(0, 1, 1), (2, 3, 2)]


class TestForestShape:
    def test_star_is_a_tree(self):
        graph = CommunicationGraph(n=8, edges=[(0, 1, 1), (0, 2, 1), (0, 3, 1)])
        assert graph.is_forest_of_out_trees()

    def test_two_roots_fail(self):
        # 0 -> 1 <- 2: node 1 has in-degree 2; component has two roots.
        graph = CommunicationGraph(n=8, edges=[(0, 1, 1), (2, 1, 1)])
        assert not graph.is_forest_of_out_trees()

    def test_forest_of_two_trees(self):
        graph = CommunicationGraph(
            n=8, edges=[(0, 1, 1), (0, 2, 1), (4, 5, 1)]
        )
        assert graph.is_forest_of_out_trees()

    def test_chain_is_a_tree(self):
        graph = CommunicationGraph(n=8, edges=[(0, 1, 1), (1, 2, 2), (2, 3, 3)])
        assert graph.is_forest_of_out_trees()
