"""Unit tests for influence clouds (repro.lowerbound.clouds)."""

from repro.lowerbound.clouds import find_initiators, influence_clouds
from repro.sim.trace import Trace, TraceEvent


def _delivered(trace, src, dst, round_):
    trace.record(TraceEvent(round=round_, kind="send", src=src, dst=dst, message_kind="X"))
    trace.record(
        TraceEvent(round=round_, kind="deliver", src=src, dst=dst, message_kind="X")
    )


class TestInitiators:
    def test_spontaneous_sender_is_initiator(self):
        trace = Trace()
        _delivered(trace, 0, 1, 1)
        assert find_initiators(trace) == [0]

    def test_reactive_sender_is_not_initiator(self):
        # Node 1 receives in round 1 (available round 2), replies round 2.
        trace = Trace()
        _delivered(trace, 0, 1, 1)
        _delivered(trace, 1, 0, 2)
        assert find_initiators(trace) == [0]

    def test_concurrent_initiators(self):
        trace = Trace()
        _delivered(trace, 0, 2, 1)
        _delivered(trace, 1, 3, 1)
        assert find_initiators(trace) == [0, 1]

    def test_silent_nodes_are_not_initiators(self):
        trace = Trace()
        _delivered(trace, 0, 1, 1)
        assert 1 not in find_initiators(trace)


class TestInfluenceClouds:
    def test_cloud_is_reachable_set(self):
        trace = Trace()
        _delivered(trace, 0, 1, 1)
        _delivered(trace, 1, 2, 2)
        decomposition = influence_clouds(trace, n=8)
        assert decomposition.clouds[0] == {0, 1, 2}

    def test_disjoint_clouds(self):
        trace = Trace()
        _delivered(trace, 0, 1, 1)
        _delivered(trace, 4, 5, 1)
        decomposition = influence_clouds(trace, n=8)
        assert decomposition.smallest_disjoint is True
        assert decomposition.cloud_sizes() == [2, 2]

    def test_merged_clouds_detected(self):
        trace = Trace()
        _delivered(trace, 0, 2, 1)
        _delivered(trace, 1, 2, 1)  # both initiators reach node 2
        decomposition = influence_clouds(trace, n=8)
        assert decomposition.smallest_disjoint is False

    def test_empty_trace(self):
        decomposition = influence_clouds(Trace(), n=8)
        assert decomposition.initiators == []
        assert decomposition.smallest_cloud is None
        assert decomposition.smallest_disjoint is None

    def test_on_real_agreement_run(self, fast_params):
        from repro.core import agree
        from repro.lowerbound.bounds import min_initiators

        result = agree(
            n=96, alpha=0.5, inputs="mixed", seed=3, adversary="random",
            params=fast_params(96), collect_trace=True,
        )
        decomposition = influence_clouds(result.trace, n=96)
        # Initiators are exactly the candidates that got a registration out.
        assert len(decomposition.initiators) >= min_initiators(0.5)
        assert set(decomposition.initiators) <= set(result.candidates_all)
