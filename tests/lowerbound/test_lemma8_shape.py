"""Empirical check of Lemma 8's structural claim.

Lemma 8 (Section V-B): a low-message execution's first-contact
communication graph is, w.h.p., a forest of out-trees — the independent
"deciding trees" whose uncoordinated decisions doom any algorithm that
talks too little.  We verify the shape on budget-starved runs and its
breakdown (merging clouds) on full-budget runs.
"""

import math

from repro.core import agree
from repro.lowerbound.comm_graph import communication_graph
from repro.rng import seed_sequence

N = 256


def _graph(seed, budget):
    result = agree(
        n=N,
        alpha=0.5,
        inputs="mixed",
        seed=seed,
        adversary="none",
        message_budget=budget,
        collect_trace=True,
    )
    return communication_graph(result.trace, N).first_contact_graph()


class TestForestShape:
    def test_starved_runs_form_forests(self):
        budget = max(2, int(math.sqrt(N) / 2))
        forests = sum(
            _graph(seed, budget).is_forest_of_out_trees()
            for seed in seed_sequence(31, 8)
        )
        assert forests >= 7  # w.h.p. per Lemma 8

    def test_starved_runs_touch_few_nodes(self):
        # B messages can influence at most 2B nodes (Lemma 5's counting).
        budget = max(2, int(math.sqrt(N) / 2))
        graph = _graph(32, budget)
        assert len(graph.nodes_communicating) <= 2 * budget

    def test_full_budget_merges_everything(self):
        # With the full message budget the committee's clouds all merge:
        # far from a forest, one giant strongly-intertwined component.
        graph = _graph(33, budget=None)
        assert not graph.is_forest_of_out_trees()
        components = graph.undirected_components()
        assert max(len(c) for c in components) > N / 2
