"""Supervised execution: worker death, hung pools, abandonment, shutdown.

The tests in this module deliberately ``kill -9`` their own pool workers
(via tasks that SIGKILL the process they run in) and assert the
supervisor's recovery contract from docs/RESILIENCE.md: the campaign
finishes, every trial lands exactly once, the output matches a serial
run, and the violence is visible in :class:`SupervisorStats`.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

import repro.parallel.supervisor as supervisor_mod
from repro.errors import CampaignInterrupted
from repro.exec import FAILED, OK, Journal, ResilientExecutor, RetryPolicy
from repro.obs import merge_supervisor_stats
from repro.parallel import (
    GracefulShutdown,
    PoolSupervisor,
    SupervisorStats,
    TrialSpec,
    chunk_deadline_seconds,
    is_supervisor_record,
    run_trials_resilient,
)

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="needs POSIX kill semantics"
)


# Module-level tasks: they must pickle by reference into pool workers.
def echo_task(seed=0, **point):
    return {"seed": seed, "value": seed * 3}


def kill_once_task(seed=0, marker_dir=None, victims=(), **point):
    """SIGKILL the worker the first time each victim seed runs."""
    if seed in victims:
        marker = Path(marker_dir) / f"killed-{seed}"
        if not marker.exists():
            marker.write_text("x")
            os.kill(os.getpid(), signal.SIGKILL)
    return {"seed": seed, "value": seed * 3}


def poison_task(seed=0, **point):
    """SIGKILL the worker every single time: an unrecoverable trial."""
    os.kill(os.getpid(), signal.SIGKILL)


def sleepy_chunk(specs):
    """A worker function that hangs well past any test deadline."""
    time.sleep(60)
    return [(spec.index, "too late") for spec in specs]


def specs_for(task, count, **extra_point):
    return [
        TrialSpec(
            index=i,
            task=f"{__name__}:{task.__name__}",
            seed=i,
            point=dict(extra_point),
            key=f"t[{i}]",
        )
        for i in range(count)
    ]


class TestStats:
    def test_fresh_stats_are_uneventful(self):
        assert not SupervisorStats().eventful

    def test_any_counter_makes_stats_eventful(self):
        assert SupervisorStats(worker_deaths=1).eventful
        assert SupervisorStats(interrupted=True).eventful

    def test_merge_sums_counters(self):
        a = SupervisorStats(pool_rebuilds=1, worker_deaths=2)
        b = SupervisorStats(pool_rebuilds=1, abandoned_trials=1, interrupted=True)
        a.merge(b)
        assert a.pool_rebuilds == 2
        assert a.worker_deaths == 2
        assert a.abandoned_trials == 1
        assert a.interrupted

    def test_journal_record_round_trip(self):
        record = SupervisorStats(hung_chunks=3).journal_record()
        assert is_supervisor_record(record)
        assert record["hung_chunks"] == 3
        assert not is_supervisor_record({"key": "t[0]"})
        assert not is_supervisor_record("not a dict")


class TestChunkDeadline:
    def test_no_timeout_means_no_deadline(self):
        assert chunk_deadline_seconds(None, 3) is None
        assert chunk_deadline_seconds(0, 3) is None

    def test_budget_covers_retries_and_backoff(self):
        assert chunk_deadline_seconds(2.0, 3, backoff_seconds=1.5) == 7.5
        assert chunk_deadline_seconds(2.0, 0) == 2.0


class TestGracefulShutdown:
    def test_request_sets_flag_and_signal(self):
        shutdown = GracefulShutdown()
        assert not shutdown.requested
        shutdown.request(signal.SIGTERM)
        assert shutdown.requested
        assert shutdown.describe() == "SIGTERM"

    def test_programmatic_request_without_signal(self):
        shutdown = GracefulShutdown()
        shutdown.request()
        assert shutdown.describe() == "shutdown request"

    def test_real_signal_is_caught_and_handlers_restored(self):
        previous = signal.getsignal(signal.SIGTERM)
        with GracefulShutdown() as shutdown:
            os.kill(os.getpid(), signal.SIGTERM)
            time.sleep(0.05)  # let the handler run at a bytecode boundary
            assert shutdown.requested
            assert shutdown.signum == signal.SIGTERM
        assert signal.getsignal(signal.SIGTERM) is previous


class TestShutdownBoundary:
    def test_serial_path_stops_at_trial_boundary(self):
        shutdown = GracefulShutdown()
        shutdown.request(signal.SIGINT)
        with pytest.raises(CampaignInterrupted) as excinfo:
            run_trials_resilient(
                specs_for(echo_task, 4),
                jobs=1,
                executor=ResilientExecutor(),
                shutdown=shutdown,
            )
        assert "--resume" in str(excinfo.value)
        assert excinfo.value.signum == signal.SIGINT

    def test_parallel_path_raises_and_journals_the_interrupt(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        executor = ResilientExecutor(journal=journal)
        shutdown = GracefulShutdown()
        shutdown.request(signal.SIGTERM)
        with pytest.raises(CampaignInterrupted) as excinfo:
            run_trials_resilient(
                specs_for(echo_task, 4),
                jobs=2,
                executor=executor,
                shutdown=shutdown,
            )
        assert "SIGTERM" in str(excinfo.value)
        assert executor.last_supervisor_stats.interrupted
        # The interrupt itself is durable: a supervisor record landed.
        kinds = [r for r in journal.load() if is_supervisor_record(r)]
        assert len(kinds) == 1 and kinds[0]["interrupted"] is True


class TestWorkerDeathRecovery:
    def test_killed_workers_redispatch_and_match_serial(self, tmp_path):
        """kill -9 two workers mid-sweep; output matches an untouched run."""
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        specs = specs_for(
            kill_once_task, 8, marker_dir=str(marker_dir), victims=(2, 5)
        )
        executor = ResilientExecutor(journal=Journal(tmp_path / "j.jsonl"))
        outcomes = run_trials_resilient(specs, jobs=2, executor=executor)

        assert [o.status for o in outcomes] == [OK] * 8
        assert [o.value["value"] for o in outcomes] == [i * 3 for i in range(8)]
        # Both kills happened (each victim left its marker)...
        assert sorted(p.name for p in marker_dir.iterdir()) == [
            "killed-2",
            "killed-5",
        ]
        stats = executor.last_supervisor_stats
        assert stats.pool_rebuilds >= 1
        assert stats.worker_deaths >= 1
        assert stats.redispatched_trials >= 1

        # ...and the recovered output is byte-identical to a serial run
        # of the same specs (the markers now exist, so nothing kills).
        serial = run_trials_resilient(specs, jobs=1, executor=ResilientExecutor())
        as_bytes = lambda outs: json.dumps(  # noqa: E731
            [(o.key, o.seed, o.status, o.value) for o in outs], sort_keys=True
        )
        assert as_bytes(outcomes) == as_bytes(serial)

        # The supervision events rode into the journal for `repro report`.
        records = executor.journal.load()
        supervisor_records = [r for r in records if is_supervisor_record(r)]
        assert len(supervisor_records) == 1
        totals = merge_supervisor_stats(supervisor_records)
        assert totals["runs"] == 1 and totals["pool_rebuilds"] >= 1

    def test_poison_trial_is_abandoned_not_retried_forever(self, tmp_path):
        """A trial that always kills its worker ends as FAILED, not a loop."""
        specs = specs_for(echo_task, 4)
        poison = TrialSpec(
            index=4, task=f"{__name__}:poison_task", seed=99, key="poison"
        )
        executor = ResilientExecutor(journal=Journal(tmp_path / "j.jsonl"))
        outcomes = run_trials_resilient(
            specs + [poison],
            jobs=2,
            executor=executor,
            chunk_size=1,
            max_dispatches=2,
        )

        by_key = {o.key: o for o in outcomes}
        assert by_key["poison"].status == FAILED
        assert "kept breaking its worker" in by_key["poison"].error
        for i in range(4):  # the healthy trials all survived the carnage
            assert by_key[f"t[{i}]"].status == OK
        stats = executor.last_supervisor_stats
        assert stats.abandoned_trials == 1
        assert stats.pool_rebuilds >= 2  # one per poison dispatch
        assert stats.worker_deaths >= 1
        # Abandonment feeds the quarantine: a strike, not a silent drop.
        assert executor.quarantine.keys().get("poison") == 1
        # And the FAILED outcome is journalled like any other.
        journalled = {
            r.get("key"): r
            for r in executor.journal.load()
            if not is_supervisor_record(r)
        }
        assert journalled["poison"]["status"] == FAILED


class TestHungPool:
    def test_missed_deadline_reaps_and_abandons(self, monkeypatch):
        monkeypatch.setattr(supervisor_mod, "DEADLINE_SLACK_SECONDS", 0.1)
        abandoned = []
        delivered = []
        supervisor = PoolSupervisor(
            1,
            sleepy_chunk,
            deadline_seconds=0.2,
            poll_seconds=0.05,
            max_dispatches=1,
        )
        spec = TrialSpec(index=0, task=f"{__name__}:echo_task", seed=0)
        started = time.monotonic()
        stats = supervisor.run(
            [[spec]],
            on_result=lambda index, value: delivered.append(index),
            on_abandon=lambda s, reason: abandoned.append((s.index, reason)),
        )
        assert time.monotonic() - started < 30  # never waited out the sleep
        assert stats.hung_chunks == 1
        assert delivered == []
        assert len(abandoned) == 1
        assert abandoned[0][0] == 0
        assert "deadline" in abandoned[0][1]

    def test_over_budget_multi_trial_chunk_is_split_to_isolate(self, monkeypatch):
        """A multi-trial chunk over budget splits before anything is lost."""
        monkeypatch.setattr(supervisor_mod, "DEADLINE_SLACK_SECONDS", 0.1)
        abandoned = []
        supervisor = PoolSupervisor(
            1,
            sleepy_chunk,
            deadline_seconds=0.15,
            poll_seconds=0.05,
            max_dispatches=1,
        )
        specs = [
            TrialSpec(index=i, task=f"{__name__}:echo_task", seed=i)
            for i in range(2)
        ]
        stats = supervisor.run(
            [specs],  # one chunk holding both trials
            on_result=lambda index, value: None,
            on_abandon=lambda s, reason: abandoned.append(s.index),
        )
        # The pair chunk burnt its budget, split into singles, and each
        # single was then individually abandoned — nothing silently lost.
        assert sorted(abandoned) == [0, 1]
        assert stats.hung_chunks >= 1
        assert stats.abandoned_trials == 2


DRIVER = textwrap.dedent(
    """
    import json
    import sys
    import time

    sys.path.insert(0, sys.argv[1])
    from repro.analysis.sweeps import resilient_sweep
    from repro.errors import CampaignInterrupted
    from repro.parallel import GracefulShutdown


    def slow_task(seed=0, n=0, **point):
        time.sleep(0.25)
        return {"seed": seed, "n": n}


    def main():
        journal, jobs, resume = sys.argv[2], int(sys.argv[3]), "--resume" in sys.argv
        try:
            with GracefulShutdown() as shutdown:
                result = resilient_sweep(
                    slow_task,
                    {"n": [1, 2]},
                    trials=3,
                    master_seed=7,
                    journal_path=journal,
                    resume=resume,
                    jobs=jobs,
                    shutdown=shutdown,
                )
        except CampaignInterrupted as exc:
            print(f"interrupted: {exc}", file=sys.stderr)
            return 130
        rows = [[point, results] for point, results in result.rows()]
        print(json.dumps(rows, sort_keys=True))
        return 0


    if __name__ == "__main__":
        sys.exit(main())
    """
)


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals required")
class TestParentSigterm:
    """kill the *parent* mid-campaign, then --resume to the same bytes."""

    def _run_driver(self, driver, src_root, journal, jobs, resume=False):
        argv = [sys.executable, str(driver), src_root, str(journal), str(jobs)]
        if resume:
            argv.append("--resume")
        return subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )

    def test_sigterm_then_resume_matches_uninterrupted_serial(self, tmp_path):
        driver = tmp_path / "driver.py"
        driver.write_text(DRIVER)
        src_root = str(Path(__file__).resolve().parents[2] / "src")
        journal = tmp_path / "sweep.jsonl"

        # Phase 1: start a parallel campaign and SIGTERM it mid-flight
        # (wait until the journal proves at least one trial completed).
        proc = self._run_driver(driver, src_root, journal, jobs=2)
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if journal.exists() and journal.read_bytes().count(b"\n") >= 2:
                break
            if proc.poll() is not None:  # finished before we could kill it
                break
            time.sleep(0.05)
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=60)

        if proc.returncode != 0:  # the interrupt landed mid-campaign
            assert proc.returncode == 130, stderr
            assert "interrupted" in stderr
            assert "--resume" in stderr

            # Phase 2: resume the same journal to completion.
            resumed = self._run_driver(
                driver, src_root, journal, jobs=2, resume=True
            )
            stdout, stderr = resumed.communicate(timeout=120)
            assert resumed.returncode == 0, stderr

        # Phase 3: an untouched serial reference run, fresh journal.
        reference = self._run_driver(
            driver, src_root, tmp_path / "ref.jsonl", jobs=1
        )
        ref_stdout, ref_stderr = reference.communicate(timeout=120)
        assert reference.returncode == 0, ref_stderr

        # Byte-identical aggregates: interrupt + resume changed nothing.
        assert stdout == ref_stdout
        assert json.loads(stdout) == json.loads(ref_stdout)
