"""Unit tests for the process-pool trial scheduler (repro.parallel)."""

import os
import pickle

import pytest

from repro.errors import ConfigurationError, TrialFailed
from repro.exec import (
    FAILED,
    OK,
    QUARANTINED,
    RESUMED,
    Journal,
    ResilientExecutor,
    RetryPolicy,
)
from repro.parallel import (
    TrialSpec,
    default_chunk_size,
    resolve_jobs,
    resolve_task,
    run_trials,
    run_trials_resilient,
    task_ref,
)


# Module-level tasks: they must pickle by reference into pool workers.
def echo_task(seed=0, **point):
    return {"seed": seed, **point}


def fail_on_odd_seed(seed=0, **point):
    if seed % 2 == 1:
        raise ValueError(f"odd seed {seed}")
    return seed


def always_fail(seed=0, **point):
    raise RuntimeError("broken config")


class TestResolveJobs:
    def test_none_and_one_are_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_zero_autodetects_cores(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(-2)

    def test_explicit_count_passes_through(self):
        assert resolve_jobs(7) == 7


class TestChunking:
    def test_empty_total(self):
        assert default_chunk_size(0, 4) == 1

    def test_at_least_one(self):
        assert default_chunk_size(1, 16) == 1

    def test_splits_across_workers(self):
        # 100 trials over 4 workers: several chunks per worker for balance.
        size = default_chunk_size(100, 4)
        assert 1 <= size <= 100 // 4


class TestTaskRef:
    def test_round_trip(self):
        ref = task_ref(echo_task)
        assert ref == f"{__name__}:echo_task"
        assert resolve_task(ref) is echo_task

    def test_lambda_rejected(self):
        with pytest.raises(ConfigurationError):
            task_ref(lambda seed: seed)

    def test_nested_function_rejected(self):
        def inner(seed=0):
            return seed

        with pytest.raises(ConfigurationError):
            task_ref(inner)

    def test_resolve_caches_per_process(self):
        ref = task_ref(echo_task)
        assert resolve_task(ref) is resolve_task(ref)

    def test_resolve_bad_reference(self):
        with pytest.raises(ConfigurationError):
            resolve_task("not-a-reference")
        with pytest.raises(ConfigurationError):
            resolve_task("repro.parallel:no_such_function")
        with pytest.raises(ConfigurationError):
            resolve_task("no.such.module:task")

    def test_callable_passes_through(self):
        assert resolve_task(echo_task) is echo_task


class TestTrialSpec:
    def test_run_executes_task(self):
        spec = TrialSpec(index=0, task=echo_task, seed=5, point={"x": 1})
        assert spec.run() == {"seed": 5, "x": 1}

    def test_run_resolves_string_reference(self):
        spec = TrialSpec(index=0, task=task_ref(echo_task), seed=7)
        assert spec.run() == {"seed": 7}

    def test_picklable(self):
        spec = TrialSpec(index=3, task=task_ref(echo_task), seed=1, point={"n": 8})
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestRunTrials:
    def _specs(self, count):
        return [
            TrialSpec(index=index, task=echo_task, seed=100 + index, point={"x": index})
            for index in range(count)
        ]

    def test_empty(self):
        assert run_trials([], jobs=4) == []

    def test_serial_matches_parallel(self):
        specs = self._specs(9)
        assert run_trials(specs, jobs=1) == run_trials(specs, jobs=3)

    def test_results_in_index_order(self):
        results = run_trials(self._specs(8), jobs=2, chunk_size=3)
        assert [r["x"] for r in results] == list(range(8))

    def test_exception_propagates_as_trial_failed(self):
        specs = [
            TrialSpec(index=index, task=fail_on_odd_seed, seed=index)
            for index in range(6)
        ]
        with pytest.raises(TrialFailed) as excinfo:
            run_trials(specs, jobs=2)
        failure = excinfo.value
        assert failure.trial_index is not None
        assert failure.trial_index % 2 == 1
        assert failure.worker_pid is not None and failure.worker_pid > 0
        assert failure.spec is not None
        assert failure.spec.index == failure.trial_index
        assert "ValueError" in str(failure)

    def test_unpicklable_task_raises_helpfully(self):
        specs = [
            TrialSpec(index=index, task=lambda seed, **_: seed, seed=index)
            for index in range(4)
        ]
        with pytest.raises(ConfigurationError, match="picklable"):
            run_trials(specs, jobs=2)


class TestRunTrialsResilient:
    def _executor(self, tmp_path=None, retries=0):
        executor = ResilientExecutor(
            retry=RetryPolicy(retries=retries, backoff_base=0.0, backoff_cap=0.0)
        )
        if tmp_path is not None:
            executor.journal = Journal(str(tmp_path / "trials.jsonl"))
        return executor

    def test_failures_do_not_abort_batch(self, tmp_path):
        specs = [
            TrialSpec(index=0, task=echo_task, seed=2, key="a"),
            TrialSpec(index=1, task=always_fail, seed=4, key="b"),
            TrialSpec(index=2, task=echo_task, seed=6, key="c"),
        ]
        executor = self._executor(tmp_path)
        outcomes = run_trials_resilient(specs, jobs=2, executor=executor)
        assert [o.key for o in outcomes] == ["a", "b", "c"]
        assert [o.status for o in outcomes] == [OK, FAILED, OK]
        assert "broken config" in outcomes[1].error

    def test_parent_owns_the_journal(self, tmp_path):
        specs = [
            TrialSpec(index=index, task=echo_task, seed=index, key=f"k{index}")
            for index in range(5)
        ]
        executor = self._executor(tmp_path)
        run_trials_resilient(specs, jobs=2, executor=executor)
        records = list(executor.journal.iter_records())
        assert len(records) == 5
        assert {r["key"] for r in records} == {f"k{index}" for index in range(5)}
        assert all(r["status"] == OK for r in records)

    def test_resume_skips_completed(self, tmp_path):
        specs = [
            TrialSpec(index=index, task=echo_task, seed=index, key=f"k{index}")
            for index in range(4)
        ]
        executor = self._executor(tmp_path)
        run_trials_resilient(specs, jobs=2, executor=executor)

        fresh = ResilientExecutor()
        fresh.journal = executor.journal
        fresh.load_completed()
        outcomes = run_trials_resilient(specs, jobs=2, executor=fresh)
        assert [o.status for o in outcomes] == [RESUMED] * 4
        # Resumed outcomes are not re-journalled.
        assert len(list(fresh.journal.iter_records())) == 4

    def test_quarantine_fed_back_to_parent(self, tmp_path):
        specs = [TrialSpec(index=0, task=always_fail, seed=1, key="bad")]
        executor = self._executor(tmp_path)
        # Same key failing repeatedly accumulates parent-side strikes...
        for _ in range(executor.quarantine.threshold):
            run_trials_resilient(specs, jobs=2, executor=executor)
        assert executor.quarantine.blocks("bad")
        # ...so the next dispatch skips it without running anything.
        outcomes = run_trials_resilient(specs, jobs=2, executor=executor)
        assert outcomes[0].status == QUARANTINED
        assert outcomes[0].attempts == 0

    def test_serial_path_uses_caller_executor(self):
        specs = [
            TrialSpec(index=index, task=echo_task, seed=index, key=f"k{index}")
            for index in range(3)
        ]
        executor = self._executor()
        outcomes = run_trials_resilient(specs, jobs=1, executor=executor)
        assert [o.status for o in outcomes] == [OK] * 3
        assert [o.value["seed"] for o in outcomes] == [0, 1, 2]

    def test_worker_retries_recover_flaky_seeds(self, tmp_path):
        # seed 1 fails, but the retry's derived seed is even with
        # overwhelming probability; give it a couple of attempts.
        specs = [TrialSpec(index=0, task=fail_on_odd_seed, seed=1, key="flaky")]
        executor = self._executor(tmp_path, retries=3)
        outcomes = run_trials_resilient(specs, jobs=2, executor=executor)
        assert outcomes[0].attempts >= 1
        assert outcomes[0].status in (OK, FAILED)
