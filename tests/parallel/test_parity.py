"""Determinism parity: ``jobs=N`` output must be byte-identical to
``jobs=1`` for the same master seed — the tentpole guarantee of the
parallel scheduler.

The tasks here are the real protocols (leader election and agreement)
under crashing adversaries, and comparison is on the JSON serialisation
of the full result rows, so any divergence in seed streams, ordering, or
worker-local RNG state shows up as a byte diff.
"""

import json

from repro.analysis.sweeps import monte_carlo, resilient_sweep, sweep
from repro.chaos import default_scenarios, fuzz
from repro.experiments.harness import run_experiments_resilient
from repro.experiments.registry import get_experiment
from repro.parallel import agreement_trial, election_trial


def canonical(value) -> str:
    return json.dumps(value, sort_keys=True)


class TestSweepParity:
    def test_election_sweep_with_crashes(self):
        grid = {"n": [32, 48], "alpha": [0.75]}
        serial = sweep(election_trial, grid, trials=2, master_seed=13, jobs=1)
        parallel = sweep(election_trial, grid, trials=2, master_seed=13, jobs=4)
        assert canonical(parallel) == canonical(serial)
        # The random adversary actually crashed nodes in these runs.
        assert any(r["crashes"] > 0 for _, results in serial for r in results)

    def test_agreement_sweep_with_crashing_adversary(self):
        grid = {"n": [32], "alpha": [0.75], "adversary": ["eager", "random"]}
        serial = sweep(agreement_trial, grid, trials=2, master_seed=29, jobs=1)
        parallel = sweep(agreement_trial, grid, trials=2, master_seed=29, jobs=4)
        assert canonical(parallel) == canonical(serial)
        assert any(r["crashes"] > 0 for _, results in serial for r in results)

    def test_monte_carlo_parity(self):
        serial = monte_carlo(
            election_trial, 5, master_seed=3, jobs=1, n=32, alpha=0.75
        )
        parallel = monte_carlo(
            election_trial, 5, master_seed=3, jobs=4, n=32, alpha=0.75
        )
        assert canonical(parallel) == canonical(serial)

    def test_jobs_zero_autodetect_parity(self):
        serial = monte_carlo(
            election_trial, 2, master_seed=1, jobs=1, n=32, alpha=0.75
        )
        auto = monte_carlo(
            election_trial, 2, master_seed=1, jobs=0, n=32, alpha=0.75
        )
        assert canonical(auto) == canonical(serial)


class TestResilientSweepParity:
    def test_rows_and_counts_match(self):
        grid = {"n": [32], "alpha": [0.75]}
        serial = resilient_sweep(
            election_trial, grid, trials=3, master_seed=17, jobs=1
        )
        parallel = resilient_sweep(
            election_trial, grid, trials=3, master_seed=17, jobs=4
        )
        assert canonical(parallel.rows()) == canonical(serial.rows())
        assert parallel.counts() == serial.counts()
        assert parallel.complete and serial.complete


class TestFuzzParity:
    def test_trials_and_failures_match(self):
        scenarios = default_scenarios(n=24)
        serial = fuzz(scenarios, seeds=3, master_seed=21, jobs=1)
        parallel = fuzz(scenarios, seeds=3, master_seed=21, jobs=4)
        assert parallel.trials == serial.trials
        assert parallel.attempted == serial.attempted
        assert canonical([c.to_dict() for c in parallel.failures]) == canonical(
            [c.to_dict() for c in serial.failures]
        )


class TestHarnessParity:
    def test_registry_experiment_parallel_report_matches_serial(self):
        experiments = [get_experiment("E5")]
        serial, serial_counts = run_experiments_resilient(
            experiments, quick=True, jobs=1
        )
        parallel, parallel_counts = run_experiments_resilient(
            experiments, quick=True, jobs=2
        )
        assert parallel_counts == serial_counts
        assert canonical(parallel[0].to_dict()) == canonical(serial[0].to_dict())
