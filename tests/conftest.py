"""Shared fixtures for the test-suite.

Most protocol tests run with reduced sampling constants (``fast_params``):
smaller committees and referee sets keep each run in the ~10ms range while
exercising exactly the same code paths.  A handful of integration tests
use the paper's constants.
"""

from __future__ import annotations

import pytest

from repro.params import Params

#: Reduced constants: ~10x fewer messages per run, still reliable at the
#: sizes the tests use (validated empirically; see integration tests for
#: the paper constants).
FAST = dict(candidate_factor=3.0, referee_factor=1.5, iteration_factor=4.0)


@pytest.fixture
def fast_params():
    """Factory for reduced-constant Params."""

    def make(n: int, alpha: float = 0.5, **overrides) -> Params:
        kwargs = {**FAST, **overrides}
        return Params(n=n, alpha=alpha, **kwargs)

    return make


@pytest.fixture
def paper_params():
    """Factory for paper-constant Params."""

    def make(n: int, alpha: float = 0.5, **overrides) -> Params:
        return Params(n=n, alpha=alpha, **overrides)

    return make
