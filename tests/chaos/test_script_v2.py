"""Version-2 script wire-format tests (repro.chaos.script): the explicit
version stamp, the byzantine/delivery sections, ScriptError validation of
malformed input, and the structural edits the shrinker relies on."""

import pytest

from repro.chaos.script import (
    SCRIPT_VERSION,
    SUPPORTED_SCRIPT_VERSIONS,
    CrashScript,
    DeliveryFilter,
    as_script,
)
from repro.errors import ScriptError
from repro.faults.byzantine import ByzantinePlan
from repro.sim.delivery import SYNCHRONOUS, TargetedDelay, UniformDelay


def _script():
    return CrashScript(
        faulty=(1, 3),
        crashes={1: (4, DeliveryFilter(kind="drop_all"))},
        label="",
        byzantine=ByzantinePlan(
            modes={7: "zero_forger", 9: "omission"},
            omission_fraction=0.5,
            salt=13,
        ),
        delivery=UniformDelay(2, salt=21),
    )


class TestVersionStamp:
    def test_writes_current_version(self):
        assert CrashScript().to_dict()["version"] == SCRIPT_VERSION
        assert SCRIPT_VERSION in SUPPORTED_SCRIPT_VERSIONS

    def test_version_one_still_loads(self):
        # A pre-v2 journal entry has no version key and no new sections.
        legacy = {
            "faulty": [2, 5],
            "crashes": {
                "2": {"round": 3, "filter": {"kind": "drop_all"}},
            },
            "label": "old",
        }
        script = CrashScript.from_dict(legacy)
        assert script.faulty == (2, 5)
        assert script.crashes[2][0] == 3
        assert not script.byzantine.modes
        assert script.delivery.is_synchronous

    def test_future_version_rejected_with_context(self):
        with pytest.raises(ScriptError, match="version 99"):
            CrashScript.from_dict({"version": 99})


class TestRoundTrip:
    def test_v2_sections_survive(self):
        script = _script()
        restored = CrashScript.from_json(script.to_json())
        assert restored.faulty == script.faulty
        assert restored.crashes == script.crashes
        assert restored.byzantine == script.byzantine
        assert restored.delivery.to_dict() == script.delivery.to_dict()
        assert restored.to_dict() == script.to_dict()

    def test_crash_only_script_keeps_compact_shape(self):
        data = CrashScript(faulty=(0,), crashes={}).to_dict()
        assert "byzantine" not in data
        assert "delivery" not in data

    def test_targeted_delivery_round_trips(self):
        script = CrashScript(delivery=TargetedDelay({4: 3}))
        restored = as_script(script.to_dict())
        assert restored.delivery.to_dict() == {
            "kind": "targeted",
            "targets": {"4": 3},
        }
        assert restored.max_delay == 3


class TestValidation:
    def test_non_mapping_rejected(self):
        with pytest.raises(ScriptError, match="expected an object"):
            CrashScript.from_dict([1, 2, 3])

    def test_bad_crashes_shape(self):
        with pytest.raises(ScriptError, match="'crashes'"):
            CrashScript.from_dict({"crashes": [1, 2]})

    def test_bad_node_id_named(self):
        with pytest.raises(ScriptError, match="crashes\\['leader'\\]"):
            CrashScript.from_dict(
                {"crashes": {"leader": {"round": 1, "filter": {"kind": "drop_all"}}}}
            )

    def test_missing_round_named(self):
        with pytest.raises(ScriptError, match="missing required key 'round'"):
            CrashScript.from_dict(
                {"crashes": {"3": {"filter": {"kind": "drop_all"}}}}
            )

    def test_bad_filter_kind_names_entry(self):
        with pytest.raises(ScriptError, match="crashes\\['3'\\].filter"):
            CrashScript.from_dict(
                {"crashes": {"3": {"round": 1, "filter": {"kind": "teleport"}}}}
            )

    def test_bad_faulty_list(self):
        with pytest.raises(ScriptError, match="'faulty'"):
            CrashScript.from_dict({"faulty": ["node-one"]})

    def test_bad_byzantine_section(self):
        with pytest.raises(ScriptError, match="'byzantine'"):
            CrashScript.from_dict(
                {"byzantine": {"modes": {"3": "sleeper_agent"}}}
            )

    def test_bad_delivery_section(self):
        with pytest.raises(ScriptError, match="'delivery'"):
            CrashScript.from_dict({"delivery": {"kind": "wormhole"}})

    def test_invalid_json_wrapped(self):
        with pytest.raises(ScriptError, match="not valid JSON"):
            CrashScript.from_json("{not json")


class TestNameAndSize:
    def test_name_suffixes_new_dimensions(self):
        assert _script().name() == "script/1crashes+2byz+delay2"
        assert CrashScript().name() == "script/0crashes"

    def test_label_wins(self):
        assert _script().with_delivery(SYNCHRONOUS) is not None
        labelled = CrashScript(label="fuzz@7")
        assert labelled.name() == "fuzz@7"

    def test_size_counts_byzantine_and_delay(self):
        script = _script()
        # 2 crash-faulty + 2 byzantine; 1 crash + 2 assignments;
        # drop_all (2) + zero_forger (2) + omission (1) + delay 2.
        assert script.size() == (4, 3, 7)

    def test_size_strictly_shrinks_under_edits(self):
        script = _script()
        assert script.without_byzantine(7).size() < script.size()
        assert (
            script.with_byzantine_mode(7, "omission").size() < script.size()
        )
        assert script.with_delivery(SYNCHRONOUS).size() < script.size()
        assert script.without_faulty(1).size() < script.size()

    def test_v1_size_components_unchanged(self):
        script = CrashScript(
            faulty=(0, 1),
            crashes={0: (2, DeliveryFilter(kind="drop_all"))},
        )
        assert script.size() == (2, 1, 2)


class TestStructuralEdits:
    def test_edits_preserve_unrelated_fields(self):
        script = _script()
        edited = script.without_crash(1)
        assert edited.byzantine == script.byzantine
        assert edited.delivery is script.delivery
        assert edited.faulty == script.faulty

    def test_without_byzantine_removes_only_that_node(self):
        edited = _script().without_byzantine(7)
        assert edited.byzantine.modes == {9: "omission"}
        assert edited.crashes == _script().crashes

    def test_with_delivery_swaps_schedule(self):
        edited = _script().with_delivery(SYNCHRONOUS)
        assert edited.delivery.is_synchronous
        assert edited.max_delay == 0
        assert edited.byzantine == _script().byzantine

    def test_adversary_wraps_byzantine_plans(self):
        from repro.faults.byzantine import ByzantineAdversary

        assert isinstance(_script().adversary(), ByzantineAdversary)
        crash_only = CrashScript(faulty=(1,))
        assert crash_only.adversary() is crash_only
