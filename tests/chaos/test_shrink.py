"""Tests for schedule shrinking (repro.chaos.shrink).

These use synthetic failure predicates (no simulator), so they pin the
shrinker's convergence and minimality guarantees in microseconds; the
end-to-end shrink of a real engine violation lives in test_fuzzer.py.
"""

from repro.chaos import CrashScript, DeliveryFilter, shrink_script
from repro.chaos.shrink import DEFAULT_MAX_EVALS, ShrinkResult


def _fat_script():
    drop = DeliveryFilter(kind="drop_all")
    return CrashScript(
        faulty=(1, 2, 3, 5, 8),
        crashes={
            1: (2, drop),
            2: (3, drop),
            5: (4, drop),
            8: (6, DeliveryFilter(kind="keep_fraction", fraction=0.3, salt=9)),
        },
        label="fat",
    )


class TestShrinkScript:
    def test_minimises_to_the_load_bearing_crash(self):
        # Failure depends only on node 5 crashing at all.
        result = shrink_script(
            _fat_script(), lambda s: 5 in s.crashes, max_round=20
        )
        assert result.converged
        assert set(result.script.crashes) == {5}
        assert result.script.faulty == (5,)
        # The surviving crash is maximally mild: widest filter, latest round.
        round_, filter_ = result.script.crashes[5]
        assert filter_.kind == "keep_all"
        assert round_ == 20

    def test_preserves_failure_predicate(self):
        still_fails = lambda s: 5 in s.crashes and s.crashes[5][0] <= 10
        result = shrink_script(_fat_script(), still_fails, max_round=20)
        assert result.converged
        assert still_fails(result.script)
        assert result.script.crashes[5][0] <= 10

    def test_measure_never_increases(self):
        result = shrink_script(
            _fat_script(), lambda s: 5 in s.crashes, max_round=20
        )
        sizes = [_fat_script().size()] + result.history
        for before, after in zip(sizes, sizes[1:]):
            assert after <= before

    def test_unshrinkable_script_is_fixpoint(self):
        minimal = CrashScript(
            faulty=(5,), crashes={5: (20, DeliveryFilter(kind="keep_all"))}
        )
        result = shrink_script(minimal, lambda s: 5 in s.crashes, max_round=20)
        assert result.converged
        assert result.accepted_steps == 0
        assert result.script == minimal

    def test_eval_cap_reported(self):
        result = shrink_script(
            _fat_script(), lambda s: 5 in s.crashes, max_round=20, max_evals=1
        )
        assert not result.converged
        assert result.evaluations == 1

    def test_converges_within_default_budget(self):
        result = shrink_script(
            _fat_script(), lambda s: 5 in s.crashes, max_round=500
        )
        assert result.converged
        assert result.evaluations < DEFAULT_MAX_EVALS

    def test_geometric_delay_handles_huge_horizons(self):
        # Delaying one round at a time across a 10^4-round horizon would
        # blow the eval cap; geometric jumps must not.
        script = CrashScript(
            faulty=(3,), crashes={3: (1, DeliveryFilter(kind="drop_all"))}
        )
        result = shrink_script(script, lambda s: 3 in s.crashes, max_round=10_000)
        assert result.converged
        assert result.script.crashes[3][0] == 10_000

    def test_result_dataclass_defaults(self):
        result = ShrinkResult(script=_fat_script())
        assert result.converged and result.evaluations == 0
