"""Extended-grammar tests (repro.chaos.grammar layers 4/5 and the fuzzer
plumbing around them): legacy stream compatibility, eager sampling,
fragile-oracle downgrades, findings routing, and shrinking a Byzantine
counterexample down to its essential liar."""

import json
import random

import pytest

from repro.chaos.fuzzer import (
    DELAY_TOLERANT,
    PROTOCOLS,
    SCENARIO_MODES,
    FuzzCase,
    FuzzScenario,
    fuzz,
    fuzz_one,
    replay_case,
)
from repro.chaos.grammar import FuzzedAdversary, GrammarConfig, sample_script
from repro.chaos.oracles import FRAGILE_PREFIXES, downgrade_fragile
from repro.chaos.script import CrashScript, DeliveryFilter
from repro.chaos.shrink import shrink_case
from repro.errors import ConfigurationError
from repro.faults.byzantine import ByzantinePlan
from repro.sim.delivery import UniformDelay


class TestGrammarLayers:
    def test_default_config_is_crash_only(self):
        config = GrammarConfig()
        assert not config.extended
        script = sample_script(random.Random(5), n=32, max_faulty=12, horizon=20)
        assert not script.byzantine.modes
        assert script.delivery.is_synchronous

    def test_extended_flag(self):
        assert GrammarConfig(byzantine_modes=("omission",)).extended
        assert GrammarConfig(max_delay=2).extended
        assert not GrammarConfig(byzantine_probability=0.9).extended

    def test_legacy_stream_unchanged_by_extension(self):
        # Layers 4/5 draw *after* the crash layers, so the same RNG state
        # yields bit-identical crash schedules whether or not the
        # extension is enabled — legacy (seed, config) pairs regenerate
        # the schedules they always did.
        extended = GrammarConfig(
            byzantine_modes=("omission", "zero_forger"), max_delay=3
        )
        plain = sample_script(
            random.Random(42), n=32, max_faulty=12, horizon=20
        )
        widened = sample_script(
            random.Random(42), n=32, max_faulty=12, horizon=20, config=extended
        )
        assert widened.faulty == plain.faulty
        assert widened.crashes == plain.crashes

    def test_extended_draws_are_deterministic(self):
        config = GrammarConfig(
            byzantine_modes=("omission", "zero_forger"),
            byzantine_probability=1.0,
            max_delay=3,
            delay_probability=1.0,
        )
        a = sample_script(random.Random(7), n=32, max_faulty=12, horizon=20, config=config)
        b = sample_script(random.Random(7), n=32, max_faulty=12, horizon=20, config=config)
        assert a.to_dict() == b.to_dict()

    def test_byzantine_layer_respects_budget_and_caps(self):
        config = GrammarConfig(
            byzantine_modes=("omission", "zero_forger"),
            byzantine_probability=1.0,
            max_byzantine=2,
        )
        for seed in range(30):
            script = sample_script(
                random.Random(seed), n=24, max_faulty=8, horizon=15, config=config
            )
            byz = script.byzantine.nodes
            assert len(byz) <= 2
            assert len(script.faulty) + len(byz) <= 8
            assert not byz & set(script.faulty)
            assert set(script.byzantine.modes.values()) <= {
                "omission",
                "zero_forger",
            }

    def test_delay_layer_bounded(self):
        config = GrammarConfig(max_delay=4, delay_probability=1.0)
        delays = set()
        for seed in range(30):
            script = sample_script(
                random.Random(seed), n=16, max_faulty=4, horizon=10, config=config
            )
            delays.add(script.max_delay)
        assert delays <= {1, 2, 3, 4}
        assert len(delays) > 1

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            GrammarConfig(byzantine_modes=("sleeper",))
        with pytest.raises(ConfigurationError):
            GrammarConfig(max_delay=-1)
        with pytest.raises(ConfigurationError):
            GrammarConfig(byzantine_probability=2.0)

    def test_fuzzed_adversary_rejects_extended_config(self):
        with pytest.raises(ConfigurationError, match="eagerly"):
            FuzzedAdversary(horizon=10, config=GrammarConfig(max_delay=2))


class TestFragileOracles:
    def test_downgrade_rewrites_oracle_prefix(self):
        violations = [
            "oracle: two leaders elected",
            "model: conservation broken",
        ]
        downgraded = downgrade_fragile(violations, prefix="byzantine")
        assert downgraded == [
            "byzantine: two leaders elected",
            "model: conservation broken",
        ]

    def test_async_prefix_supported(self):
        assert downgrade_fragile(["oracle: x"], prefix="async") == ["async: x"]

    def test_unknown_prefix_rejected(self):
        with pytest.raises(ValueError):
            downgrade_fragile(["oracle: x"], prefix="cosmic")

    def test_is_finding_requires_all_fragile(self):
        scenario = FuzzScenario("agreement", n=16)
        script = CrashScript()
        fragile = FuzzCase(scenario, 0, script, ["byzantine: validity broken"])
        assert fragile.is_finding
        mixed = FuzzCase(
            scenario, 0, script,
            ["byzantine: validity broken", "model: conservation broken"],
        )
        assert not mixed.is_finding
        clean = FuzzCase(scenario, 0, script, [])
        assert not clean.is_finding

    def test_scenario_mode_table_complete(self):
        assert set(SCENARIO_MODES) == set(PROTOCOLS)
        assert DELAY_TOLERANT == ("ben_or",)
        for prefix in FRAGILE_PREFIXES:
            assert prefix in ("byzantine", "async")


class TestFuzzOneExtended:
    def test_modes_filtered_per_family(self):
        # An agreement trial must never instantiate a rank forger: with
        # only election modes configured the effective pool is empty, so
        # the sampled script is crash-only.
        config = GrammarConfig(
            byzantine_modes=("rank_forger", "equivocator"),
            byzantine_probability=1.0,
        )
        scenario = FuzzScenario("agreement", n=16, inputs="all1")
        for seed in (3, 11, 27):
            case = fuzz_one(scenario, seed, config=config)
            if case is not None:
                assert not case.script.byzantine.modes

    def test_forged_certificate_surfaces_as_finding(self):
        config = GrammarConfig(
            byzantine_modes=("zero_forger",),
            byzantine_probability=1.0,
            max_byzantine=1,
        )
        scenario = FuzzScenario("ben_or", n=16, inputs="all1")
        findings = []
        for seed in range(8):
            case = fuzz_one(scenario, seed, config=config)
            if case is not None and case.is_finding:
                findings.append(case)
        assert findings, "no zero-forger trial produced a finding"
        case = findings[0]
        assert "zero_forger" in case.script.byzantine.modes.values()
        assert all(v.startswith("byzantine:") for v in case.violations)
        # The recorded case replays to the same violations.
        assert replay_case(case) == case.violations


class TestFindingsRouting:
    def _campaign(self, tmp_path):
        journal = tmp_path / "fuzz.jsonl"
        config = GrammarConfig(
            byzantine_modes=("zero_forger",),
            byzantine_probability=1.0,
            max_byzantine=1,
        )
        report = fuzz(
            [FuzzScenario("ben_or", n=16, inputs="all1")],
            seeds=6,
            config=config,
            shrink_failures=False,
            journal=str(journal),
        )
        return report, journal

    def test_findings_do_not_fail_the_campaign(self, tmp_path):
        report, _ = self._campaign(tmp_path)
        assert report.clean
        assert not report.failures
        assert report.findings
        assert report.summary()["findings"] == len(report.findings)

    def test_journal_marks_findings(self, tmp_path):
        _, journal = self._campaign(tmp_path)
        records = [
            json.loads(line)
            for line in journal.read_text().splitlines()
            if line.strip()
        ]
        statuses = {r.get("status") for r in records if "status" in r}
        assert "finding" in statuses
        assert "violation" not in statuses
        finding = next(r for r in records if r.get("status") == "finding")
        # The journalled script is a complete v2 reproducer.
        script = CrashScript.from_dict(finding["script"])
        assert script.byzantine.modes


class TestByzantineShrink:
    def test_seeded_violation_shrinks_to_essential_liar(self):
        # A deliberately bloated schedule — crashes, extra faulty nodes,
        # a delay bound, and one forger — must shrink to (at most) two
        # faulty nodes while still breaking validity the same way.
        scenario = FuzzScenario("ben_or", n=16, inputs="all1")
        script = CrashScript(
            faulty=(1, 2, 3),
            crashes={
                1: (3, DeliveryFilter(kind="drop_all")),
                2: (5, DeliveryFilter(kind="keep_fraction", fraction=0.4, salt=9)),
            },
            byzantine=ByzantinePlan(modes={7: "zero_forger"}, salt=3),
            delivery=UniformDelay(1, salt=8),
            label="seeded",
        )
        violations = replay_case(FuzzCase(scenario, 0, script))
        case = FuzzCase(scenario, 0, script, violations)
        assert case.is_finding
        assert "byzantine" in case.signature

        shrunk = shrink_case(case)
        assert shrunk.signature == case.signature
        total_faulty = len(shrunk.script.faulty) + len(
            shrunk.script.byzantine.modes
        )
        assert total_faulty <= 2
        assert "zero_forger" in shrunk.script.byzantine.modes.values()
        assert shrunk.script.size() <= case.script.size()
        # The minimised schedule still reproduces.
        assert replay_case(shrunk) == shrunk.violations
