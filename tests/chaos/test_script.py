"""Tests for CrashScript / DeliveryFilter (repro.chaos.script)."""

import random

import pytest

from repro.chaos import CrashScript, DeliveryFilter, as_script
from repro.errors import ConfigurationError
from repro.faults.adversary import RoundView
from repro.sim.message import Envelope, Message


def _env(src, dst):
    return Envelope(src=src, dst=dst, message=Message(kind="x"), round_sent=1)


def _view(round_, crashed=(), faulty=(1, 2, 3)):
    return RoundView(
        round=round_,
        n=8,
        faulty_alive={u for u in faulty if u not in crashed},
        crashed={u: 1 for u in crashed},
        outboxes={},
    )


class TestDeliveryFilter:
    def test_drop_all_and_keep_all(self):
        assert not DeliveryFilter(kind="drop_all").keep(_env(0, 1))
        assert DeliveryFilter(kind="keep_all").keep(_env(0, 1))

    def test_keep_destinations(self):
        f = DeliveryFilter(kind="keep_destinations", destinations=(2, 5))
        assert f.keep(_env(0, 2))
        assert f.keep(_env(0, 5))
        assert not f.keep(_env(0, 3))

    def test_keep_fraction_is_deterministic(self):
        f = DeliveryFilter(kind="keep_fraction", fraction=0.5, salt=99)
        decisions = [f.keep(_env(1, d)) for d in range(64)]
        again = [f.keep(_env(1, d)) for d in range(64)]
        assert decisions == again
        # Extremes are exact, not probabilistic.
        zero = DeliveryFilter(kind="keep_fraction", fraction=0.0, salt=1)
        one = DeliveryFilter(kind="keep_fraction", fraction=1.0, salt=1)
        assert not any(zero.keep(_env(1, d)) for d in range(32))
        assert all(one.keep(_env(1, d)) for d in range(32))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            DeliveryFilter(kind="mystery")

    def test_bad_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            DeliveryFilter(kind="keep_fraction", fraction=1.5)

    def test_severity_ordering(self):
        keep_all = DeliveryFilter(kind="keep_all")
        partial = DeliveryFilter(kind="keep_fraction", fraction=0.5, salt=0)
        drop = DeliveryFilter(kind="drop_all")
        assert keep_all.severity < partial.severity < drop.severity

    @pytest.mark.parametrize(
        "filter_",
        [
            DeliveryFilter(kind="drop_all"),
            DeliveryFilter(kind="keep_all"),
            DeliveryFilter(kind="keep_fraction", fraction=0.25, salt=1234),
            DeliveryFilter(kind="keep_destinations", destinations=(1, 4, 7)),
        ],
    )
    def test_dict_round_trip(self, filter_):
        assert DeliveryFilter.from_dict(filter_.to_dict()) == filter_


class TestCrashScript:
    def _script(self):
        return CrashScript(
            faulty=(1, 2, 3),
            crashes={
                1: (2, DeliveryFilter(kind="drop_all")),
                2: (5, DeliveryFilter(kind="keep_fraction", fraction=0.5, salt=7)),
            },
            label="unit",
        )

    def test_select_faulty_is_static(self):
        script = self._script()
        assert script.select_faulty(8, 4, random.Random(0)) == {1, 2, 3}

    def test_plan_round_fires_only_at_crash_round(self):
        script = self._script()
        rng = random.Random(0)
        assert set(script.plan_round(_view(2), rng)) == {1}
        assert set(script.plan_round(_view(5), rng)) == {2}
        assert script.plan_round(_view(3), rng) == {}
        # An already-crashed node is not re-ordered.
        assert script.plan_round(_view(2, crashed={1}), rng) == {}

    def test_done_after_last_crash(self):
        script = self._script()
        assert not script.done(_view(1))
        assert not script.done(_view(5))
        assert script.done(_view(6))
        assert script.done(_view(5, crashed={1, 2}))

    def test_last_crash_round_and_size(self):
        script = self._script()
        assert script.last_crash_round == 5
        faulty_count, crash_count, severity = script.size()
        assert (faulty_count, crash_count) == (3, 2)
        assert severity == 3  # drop_all (2) + keep_fraction (1)

    def test_json_round_trip(self):
        script = self._script()
        assert CrashScript.from_json(script.to_json()) == script
        assert as_script(script.to_dict()) == script
        assert as_script(script) is script

    def test_json_keys_are_strings(self):
        # JSON objects force string keys; from_dict must coerce back.
        import json

        data = json.loads(self._script().to_json())
        assert all(isinstance(k, str) for k in data["crashes"])
        restored = CrashScript.from_dict(data)
        assert set(restored.crashes) == {1, 2}

    def test_edit_helpers(self):
        script = self._script()
        assert set(script.without_crash(1).crashes) == {2}
        assert script.without_crash(1).faulty == (1, 2, 3)
        assert script.without_faulty(3).faulty == (1, 2)
        moved = script.with_round(1, 9)
        assert moved.crashes[1][0] == 9
        widened = script.with_filter(1, DeliveryFilter(kind="keep_all"))
        assert widened.crashes[1][1].kind == "keep_all"
        assert widened.size() < script.size()
