"""Tests for the fuzzing campaign layer (repro.chaos.fuzzer).

The headline property test — ``test_fifty_seeds_no_violations`` — is the
empirical analogue of the paper's "for every adversary" quantifier: 50
random schedules per protocol, every run checked against the model
validator and the safety oracles.
"""

import pytest

from repro.chaos import (
    CrashScript,
    DeliveryFilter,
    FuzzCase,
    FuzzScenario,
    classify,
    default_scenarios,
    fuzz,
    fuzz_one,
    replay_case,
    run_scenario,
    shrink_case,
)
from repro.chaos.grammar import FuzzedAdversary
from repro.errors import ConfigurationError


class TestFuzzScenario:
    def test_round_trip(self):
        scenario = FuzzScenario(protocol="agreement", n=48, alpha=0.4, inputs=(0, 1))
        assert FuzzScenario.from_dict(scenario.to_dict()) == scenario

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            FuzzScenario(protocol="paxos")

    def test_horizon_positive(self):
        for scenario in default_scenarios(n=48):
            assert scenario.horizon() >= 1


class TestClassify:
    def test_prefixes(self):
        assert classify(["oracle: two leaders"]) == ("oracle",)
        assert classify(["engine: SimulationError: x"]) == ("engine",)
        assert classify(["model: round 3: phantom delivery"]) == ("model",)
        assert classify(
            ["oracle: a", "model: b", "engine: c"]
        ) == ("engine", "model", "oracle")
        assert classify([]) == ()


@pytest.mark.fuzz
class TestFuzzCampaign:
    def test_fifty_seeds_no_violations(self):
        """50 random schedules x {LE, agreement}: zero safety violations."""
        report = fuzz(default_scenarios(n=64), seeds=50, master_seed=0)
        assert report.attempted == 100
        details = [case.to_json() for case in report.failures]
        assert report.clean, f"fuzzer found violations: {details}"

    def test_budget_mode_runs_at_least_one_round(self):
        report = fuzz(default_scenarios(n=64), budget_seconds=0.0, master_seed=1)
        assert report.attempted == 2  # one trial per scenario minimum
        assert report.clean


class TestReplayDeterminism:
    def test_fuzzed_run_replays_identically_from_script(self):
        """The recorded CrashScript reproduces the fuzzed run bit-for-bit."""
        scenario = FuzzScenario(protocol="election", n=64)
        for seed in (0, 1, 2):
            adversary = FuzzedAdversary(horizon=scenario.horizon())
            live_violations, live = run_scenario(scenario, seed, adversary)
            assert live_violations == []
            script = adversary.script
            replay_violations, replayed = run_scenario(scenario, seed, script)
            assert replay_violations == []
            assert replayed.elected_alive == live.elected_alive
            assert replayed.beliefs == live.beliefs
            assert replayed.crashed == live.crashed
            assert replayed.metrics.messages_sent == live.metrics.messages_sent
            assert replayed.metrics.messages_dropped == live.metrics.messages_dropped
            assert replayed.rounds == live.rounds


class TestBrokenAdversaryIsCaught:
    """An intentionally malformed schedule must be caught, shrunk, and replayable."""

    def _broken_case(self):
        # Crashes a node that was never selected as faulty: violates the
        # model's fault discipline, so the engine must refuse.
        script = CrashScript(
            faulty=(1, 2),
            crashes={
                1: (2, DeliveryFilter(kind="drop_all")),
                50: (4, DeliveryFilter(kind="drop_all")),
            },
            label="broken",
        )
        scenario = FuzzScenario(protocol="election", n=64)
        case = FuzzCase(scenario=scenario, seed=0, script=script)
        case.violations = replay_case(case)
        return case

    def test_caught(self):
        case = self._broken_case()
        assert case.violations
        assert case.signature == ("engine",)
        assert any("non-faulty" in v for v in case.violations)

    def test_shrunk_to_minimal(self):
        shrunk = shrink_case(self._broken_case())
        # Only the illegal crash can be load-bearing.
        assert set(shrunk.script.crashes) == {50}
        assert shrunk.script.faulty == ()
        assert shrunk.signature == ("engine",)

    def test_replay_is_deterministic(self):
        shrunk = shrink_case(self._broken_case())
        first = replay_case(shrunk)
        second = replay_case(shrunk)
        assert first == second == shrunk.violations

    def test_round_trips_through_json(self):
        case = self._broken_case()
        restored = FuzzCase.from_json(case.to_json())
        assert restored.script == case.script
        assert restored.scenario == case.scenario
        assert replay_case(restored) == case.violations


class TestFuzzOne:
    def test_clean_seed_returns_none(self):
        scenario = FuzzScenario(protocol="agreement", n=64)
        assert fuzz_one(scenario, seed=0) is None

    def test_requires_scenarios(self):
        with pytest.raises(ConfigurationError):
            fuzz([], seeds=1)
