"""Tests for the schedule generation grammar (repro.chaos.grammar)."""

import random

import pytest

from repro.chaos import FuzzedAdversary, GrammarConfig, sample_filter, sample_script
from repro.errors import ConfigurationError


class TestSampleScript:
    def test_respects_fault_budget_and_horizon(self):
        for seed in range(20):
            script = sample_script(
                random.Random(seed), n=32, max_faulty=10, horizon=15
            )
            assert len(script.faulty) <= 10
            assert set(script.crashes) <= set(script.faulty)
            for round_, filter_ in script.crashes.values():
                assert 1 <= round_ <= 15
                assert filter_.kind in (
                    "drop_all", "keep_all", "keep_fraction", "keep_destinations"
                )

    def test_same_stream_same_script(self):
        a = sample_script(random.Random(7), n=32, max_faulty=10, horizon=20)
        b = sample_script(random.Random(7), n=32, max_faulty=10, horizon=20)
        assert a == b

    def test_saturate_budget_uses_all_faults(self):
        config = GrammarConfig(saturate_budget=True)
        script = sample_script(
            random.Random(3), n=32, max_faulty=10, horizon=20, config=config
        )
        assert len(script.faulty) == 10

    def test_zero_crash_probability_never_crashes(self):
        config = GrammarConfig(crash_probability=0.0)
        script = sample_script(
            random.Random(3), n=32, max_faulty=10, horizon=20, config=config
        )
        assert script.crashes == {}

    def test_invalid_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            sample_script(random.Random(0), n=8, max_faulty=2, horizon=0)

    def test_invalid_crash_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            GrammarConfig(crash_probability=1.5)


class TestSampleFilter:
    def test_all_kinds_reachable(self):
        rng = random.Random(0)
        kinds = {
            sample_filter(rng, n=16, config=GrammarConfig()).kind
            for _ in range(200)
        }
        assert kinds == {"drop_all", "keep_all", "keep_fraction", "keep_destinations"}

    def test_weights_restrict_kinds(self):
        config = GrammarConfig(filter_weights={"drop_all": 1})
        rng = random.Random(0)
        assert all(
            sample_filter(rng, n=16, config=config).kind == "drop_all"
            for _ in range(20)
        )


class TestFuzzedAdversary:
    def test_materialises_script_on_selection(self):
        adversary = FuzzedAdversary(horizon=12, label="t")
        assert adversary.script is None
        faulty = adversary.select_faulty(32, 10, random.Random(5))
        assert adversary.script is not None
        assert set(adversary.script.faulty) == faulty
        assert adversary.script.label == "t"

    def test_invalid_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            FuzzedAdversary(horizon=0)
