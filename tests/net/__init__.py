"""Tests for the real-network execution backend (repro.net)."""
