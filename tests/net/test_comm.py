"""Framed-JSON transport tests: round-trips, limits, EOF, dead peers."""

import asyncio

import pytest

from repro.errors import WireError
from repro.net.comm import (
    MAX_FRAME_BYTES,
    FrameStream,
    PeerBook,
    connect_with_backoff,
    encode_frame,
    split_host_port,
)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=10.0))


async def echo_pair():
    """A connected (client FrameStream, server FrameStream) pair."""
    accepted = asyncio.get_event_loop().create_future()

    def on_connect(reader, writer):
        accepted.set_result(FrameStream(reader, writer))

    server = await asyncio.start_server(on_connect, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    client = await connect_with_backoff("127.0.0.1", port)
    peer = await accepted
    return server, client, peer


class TestFrameStream:
    def test_frames_round_trip_and_are_counted(self):
        async def scenario():
            server, client, peer = await echo_pair()
            try:
                payloads = [
                    {"t": "m", "ar": 2, "src": 0, "k": "probe", "f": [1, "x"]},
                    {"t": "hb", "node": 3},
                ]
                for payload in payloads:
                    await client.send(payload)
                received = [await peer.recv() for _ in payloads]
                return payloads, received, client.frames_sent, peer.frames_received
            finally:
                client.close()
                server.close()
                await server.wait_closed()

        payloads, received, sent, got = run(scenario())
        assert received == payloads
        assert (sent, got) == (2, 2)

    def test_eof_surfaces_as_none_not_exception(self):
        async def scenario():
            server, client, peer = await echo_pair()
            try:
                client.close()
                await client.wait_closed()
                return await peer.recv()
            finally:
                server.close()
                await server.wait_closed()

        assert run(scenario()) is None

    def test_oversize_announcement_is_a_wire_error(self):
        async def scenario():
            server, client, peer = await echo_pair()
            try:
                # A hand-forged header announcing an absurd frame.
                client._writer.write((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
                await client._writer.drain()
                with pytest.raises(WireError, match="cap"):
                    await peer.recv()
            finally:
                client.close()
                server.close()
                await server.wait_closed()

        run(scenario())

    def test_undecodable_body_is_a_wire_error(self):
        async def scenario():
            server, client, peer = await echo_pair()
            try:
                body = b"\xff\xfe not json"
                client._writer.write(len(body).to_bytes(4, "big") + body)
                await client._writer.drain()
                with pytest.raises(WireError, match="undecodable"):
                    await peer.recv()
            finally:
                client.close()
                server.close()
                await server.wait_closed()

        run(scenario())


class TestEncodeFrame:
    def test_oversize_frame_rejected_at_the_sender(self):
        with pytest.raises(WireError, match="exceeds"):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})

    def test_header_is_big_endian_length(self):
        data = encode_frame({"a": 1})
        assert int.from_bytes(data[:4], "big") == len(data) - 4


class TestConnectWithBackoff:
    def test_gives_up_with_a_wire_error(self):
        async def scenario():
            # Grab a port, then close it so nothing listens there.
            server = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            port = server.sockets[0].getsockname()[1]
            server.close()
            await server.wait_closed()
            with pytest.raises(WireError, match="could not connect"):
                await connect_with_backoff(
                    "127.0.0.1", port, attempts=2, base_delay=0.01
                )

        run(scenario())

    def test_retries_until_the_listener_appears(self):
        async def scenario():
            probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()

            async def late_listener():
                await asyncio.sleep(0.05)
                return await asyncio.start_server(
                    lambda r, w: None, "127.0.0.1", port
                )

            listener_task = asyncio.ensure_future(late_listener())
            stream = await connect_with_backoff(
                "127.0.0.1", port, attempts=8, base_delay=0.02
            )
            stream.close()
            server = await listener_task
            server.close()
            await server.wait_closed()

        run(scenario())


class TestPeerBook:
    def test_dead_peer_is_remembered_not_redialled(self):
        async def scenario():
            probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()

            book = PeerBook("127.0.0.1", {5: port}, attempts=2, base_delay=0.01)
            first = await book.send(5, {"t": "m"})
            # The second send must short-circuit on the dead-peer memo.
            loop = asyncio.get_event_loop()
            before = loop.time()
            second = await book.send(5, {"t": "m"})
            elapsed = loop.time() - before
            book.close()
            return first, second, elapsed

        first, second, elapsed = run(scenario())
        assert (first, second) == (False, False)
        assert elapsed < 0.01  # no re-dial of a corpse

    def test_live_peer_receives_frames(self):
        async def scenario():
            inbox = []
            done = asyncio.get_event_loop().create_future()

            def on_connect(reader, writer):
                async def pump():
                    stream = FrameStream(reader, writer)
                    frame = await stream.recv()
                    inbox.append(frame)
                    done.set_result(None)

                asyncio.ensure_future(pump())

            server = await asyncio.start_server(on_connect, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            book = PeerBook("127.0.0.1", {0: port})
            ok = await book.send(0, {"t": "m", "src": 1})
            await done
            book.close()
            server.close()
            await server.wait_closed()
            return ok, inbox, book.frames_sent

        ok, inbox, sent = run(scenario())
        assert ok is True
        assert inbox == [{"t": "m", "src": 1}]
        assert sent == 1


class TestSplitHostPort:
    def test_parses_host_and_port(self):
        assert split_host_port("127.0.0.1:9000") == ("127.0.0.1", 9000)

    @pytest.mark.parametrize("bad", ["localhost", ":80", "host:", "host:abc"])
    def test_rejects_malformed_addresses(self, bad):
        with pytest.raises(WireError):
            split_host_port(bad)
