"""Failure-detector semantics under a fake clock (no real sleeping).

The three properties the wire backend leans on:

* no false suspicion below the detection bound (jitter-tolerance),
* detection within one bound of the last beat (a SIGKILLed node is
  noticed, which is what turns a dead barrier into a failed trial),
* quiescence after expected deaths are forgotten (clean shutdown).
"""

import asyncio

import pytest

from repro.net.heartbeat import HEARTBEAT_FRAME, FailureDetector, HeartbeatSender


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def detector(clock):
    # bound = 0.1 * 5 = 0.5s of silence
    return FailureDetector(0.1, 5, clock=clock)


class TestNoFalseSuspicion:
    def test_silence_below_the_bound_is_never_suspected(self, detector, clock):
        detector.register(3)
        clock.advance(detector.bound)  # exactly the bound: still innocent
        assert detector.suspects() == []

    def test_jittered_beats_keep_a_node_innocent_forever(self, detector, clock):
        detector.register(7)
        for _ in range(50):
            clock.advance(detector.bound * 0.9)  # late, but below the bound
            detector.beat(7)
        assert detector.suspects() == []
        assert detector.silence(7) == 0.0

    def test_registration_counts_as_a_beat(self, detector, clock):
        clock.advance(10.0)  # long silence before the node even exists
        detector.register(1)
        assert detector.suspects() == []


class TestDetectionWithinBound:
    def test_silent_node_is_suspected_just_past_the_bound(self, detector, clock):
        detector.register(2)
        detector.register(4)
        clock.advance(detector.bound * 0.5)
        detector.beat(4)  # node 2 goes silent here
        clock.advance(detector.bound * 0.5)
        assert detector.suspects() == []  # node 2 exactly at the bound
        clock.advance(0.001)
        assert detector.suspects() == [2]

    def test_suspects_are_sorted_and_cumulative(self, detector, clock):
        for node in (5, 1, 9):
            detector.register(node)
        clock.advance(detector.bound + 1.0)
        assert detector.suspects() == [1, 5, 9]

    def test_silence_reports_elapsed_quiet_time(self, detector, clock):
        detector.register(0)
        clock.advance(0.25)
        assert detector.silence(0) == pytest.approx(0.25)
        assert detector.silence(99) == 0.0  # untracked


class TestQuiescence:
    def test_forgotten_nodes_never_raise_suspicion(self, detector, clock):
        detector.register(3)
        detector.forget(3)  # scripted crash: an expected death
        clock.advance(detector.bound * 100)
        assert detector.suspects() == []
        assert detector.quiescent

    def test_detector_is_quiescent_after_all_forgets(self, detector):
        for node in range(4):
            detector.register(node)
        assert detector.tracked == [0, 1, 2, 3]
        assert not detector.quiescent
        for node in range(4):
            detector.forget(node)
        assert detector.quiescent
        assert detector.tracked == []

    def test_beats_from_untracked_nodes_are_ignored(self, detector, clock):
        detector.beat(8)  # never registered (or already forgotten)
        assert detector.quiescent
        assert detector.suspects() == []


class TestValidation:
    def test_rejects_nonpositive_interval(self, clock):
        with pytest.raises(ValueError, match="interval"):
            FailureDetector(0.0, 5, clock=clock)

    def test_rejects_single_missed_beat_threshold(self, clock):
        with pytest.raises(ValueError, match="suspicion_threshold"):
            FailureDetector(0.1, 1, clock=clock)


class _RecordingStream:
    def __init__(self, fail_after=None):
        self.frames = []
        self._fail_after = fail_after

    async def send(self, payload):
        if self._fail_after is not None and len(self.frames) >= self._fail_after:
            raise ConnectionResetError("coordinator is gone")
        self.frames.append(payload)


class TestHeartbeatSender:
    def test_beats_carry_the_node_id_until_stopped(self):
        async def scenario():
            stream = _RecordingStream()
            sender = HeartbeatSender(stream, node_id=6, interval=0.005)
            task = asyncio.ensure_future(sender.run())
            await asyncio.sleep(0.03)
            sender.stop()
            await task
            return stream.frames, sender.beats_sent

        frames, beats = asyncio.run(scenario())
        assert beats >= 2
        assert all(f == {"t": HEARTBEAT_FRAME, "node": 6} for f in frames)

    def test_dead_control_channel_ends_the_sender_quietly(self):
        async def scenario():
            stream = _RecordingStream(fail_after=1)
            sender = HeartbeatSender(stream, node_id=0, interval=0.001)
            await asyncio.wait_for(sender.run(), timeout=2.0)
            return stream.frames

        frames = asyncio.run(scenario())
        assert len(frames) == 1  # second send hit the dead socket and bailed
