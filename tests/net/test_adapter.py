"""Spec + loopback parity tests (the transport-free half of the oracle).

The loopback backend drives the same :class:`~repro.sim.adapter.NodeRuntime`
objects and the same :class:`~repro.net.rounds.RoundAccountant` as the real
wire, minus sockets and processes — so these tests pin the *accounting*
exactness at sim speed, leaving only transport concerns to test_wire.py.
"""

import pytest

from repro.chaos.script import CrashScript, DeliveryFilter
from repro.errors import ConfigurationError
from repro.faults.byzantine import ByzantinePlan
from repro.sim.delivery import UniformDelay
from repro.net import (
    PARITY_MODES,
    WIRE_PROTOCOLS,
    WireSpec,
    default_script,
    parity_grid,
    run_loopback_trial,
    run_parity_trial,
)


class TestWireSpec:
    def test_round_trips_through_json_dict(self):
        spec = WireSpec(protocol="agreement", n=16, seed=3, inputs="ones")
        spec = spec.with_(script=default_script(spec))
        clone = WireSpec.from_dict(spec.to_dict())
        assert clone == spec

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ConfigurationError, match="unknown wire protocol"):
            WireSpec(protocol="paxos", n=8)

    def test_rejects_byzantine_scripts(self):
        script = CrashScript(
            faulty=(1,),
            crashes={},
            byzantine=ByzantinePlan(modes={1: "equivocator"}),
        )
        spec = WireSpec(protocol="election", n=8, script=script)
        with pytest.raises(ConfigurationError, match="Byzantine"):
            spec.validate()

    def test_rejects_delayed_delivery_scripts(self):
        script = CrashScript(
            faulty=(1,),
            crashes={},
            delivery=UniformDelay(2, salt=0),
        )
        spec = WireSpec(protocol="election", n=8, script=script)
        with pytest.raises(ConfigurationError, match="round-synchronous"):
            spec.validate()

    def test_rejects_crashes_outside_the_faulty_set(self):
        script = CrashScript(
            faulty=(1,),
            crashes={2: (1, DeliveryFilter(kind="drop_all"))},
        )
        spec = WireSpec(protocol="election", n=8, script=script)
        with pytest.raises(ConfigurationError, match="outside its faulty set"):
            spec.validate()


class TestDefaultScript:
    @pytest.mark.parametrize("protocol", WIRE_PROTOCOLS)
    def test_is_deterministic_and_within_budget(self, protocol):
        spec = WireSpec(protocol=protocol, n=16, seed=7)
        script = default_script(spec)
        assert script == default_script(spec)  # same spec, same script
        spec.with_(script=script).validate()
        assert script.faulty == tuple(sorted(script.faulty))
        assert set(script.crashes) == set(script.faulty)
        for _, (round_, filter_) in script.crashes.items():
            assert round_ >= 1
            assert filter_.kind in ("keep_fraction", "drop_all")

    def test_different_seeds_pick_different_victims(self):
        base = WireSpec(protocol="election", n=32)
        scripts = {
            default_script(base.with_(seed=seed)).faulty for seed in range(6)
        }
        assert len(scripts) > 1


class TestLoopbackParity:
    @pytest.mark.parametrize("protocol", WIRE_PROTOCOLS)
    @pytest.mark.parametrize("mode", PARITY_MODES)
    def test_loopback_matches_sim_exactly(self, protocol, mode):
        reports = parity_grid(
            protocols=[protocol], sizes=[8], modes=[mode], backend="loopback"
        )
        assert len(reports) == 1
        report = reports[0]
        assert report.ok, "\n".join(report.diffs)
        assert report.wire_metrics == report.sim_metrics
        assert report.wire_outcome == report.sim_outcome

    def test_parity_holds_at_n16_with_scripted_faults(self):
        spec = WireSpec(protocol="election", n=16, seed=1)
        spec = spec.with_(script=default_script(spec))
        report = run_parity_trial(spec, backend="loopback")
        assert report.ok, "\n".join(report.diffs)
        assert report.trial.crashed  # the script actually fired

    def test_conservation_identity_holds_on_the_wire_side(self):
        spec = WireSpec(protocol="agreement", n=8, seed=2)
        spec = spec.with_(script=default_script(spec))
        trial = run_loopback_trial(spec)
        assert trial.ok, trial.reason
        m = trial.metrics
        assert m.messages_sent == (
            m.messages_delivered + m.messages_dropped + m.messages_expired
        )

    def test_unknown_backend_is_rejected(self):
        spec = WireSpec(protocol="election", n=8)
        with pytest.raises(ValueError, match="unknown parity backend"):
            run_parity_trial(spec, backend="carrier-pigeon")
