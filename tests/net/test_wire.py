"""Real-process wire trials: parity over actual TCP, SIGKILL detection.

These spawn one OS process per node (``python -m repro.net.node``) and
therefore run slower than the loopback suite — sizes stay small and the
heartbeat settings are tuned fast so no test waits longer than the
detector bound on any code path.
"""

import json
import time
from pathlib import Path

import pytest

from repro.net import WireSpec, default_script, run_parity_trial, run_wire_trial

# Fast transport settings: 50 ms beats. Parity trials use a generous
# suspicion bound (they must never false-positive under CI jitter); the
# kill-detection trial uses a tight one (0.3 s) so detection is quick.
FAST = dict(heartbeat_interval=0.05, suspicion_threshold=40, trial_timeout=120.0)
DETECT = dict(heartbeat_interval=0.05, suspicion_threshold=6, round_timeout=10.0)


class TestWireParity:
    def test_fault_free_election_matches_sim(self, tmp_path):
        spec = WireSpec(protocol="election", n=8, seed=0, **FAST)
        report = run_parity_trial(
            spec, backend="wire", journal_dir=str(tmp_path / "journal")
        )
        assert report.ok, "\n".join(report.diffs)
        assert report.wire_metrics == report.sim_metrics
        assert report.wire_outcome == report.sim_outcome

    def test_scripted_sigkill_agreement_matches_sim(self, tmp_path):
        spec = WireSpec(protocol="agreement", n=8, seed=0, **FAST)
        spec = spec.with_(script=default_script(spec))
        report = run_parity_trial(
            spec, backend="wire", journal_dir=str(tmp_path / "journal")
        )
        assert report.ok, "\n".join(report.diffs)
        # The SIGKILLs really happened and were accounted.
        assert report.trial.crashed
        assert report.wire_metrics["crashes"] == len(report.trial.crashed)

    def test_scripted_flooding_matches_sim(self, tmp_path):
        spec = WireSpec(protocol="flooding", n=8, seed=0, inputs="mixed", **FAST)
        spec = spec.with_(script=default_script(spec))
        report = run_parity_trial(
            spec, backend="wire", journal_dir=str(tmp_path / "journal")
        )
        assert report.ok, "\n".join(report.diffs)


class TestKillDetection:
    def test_unscripted_sigkill_fails_the_trial_via_the_detector(self, tmp_path):
        """An unexpected death must journal a failed trial, not hang."""
        spec = WireSpec(protocol="election", n=8, seed=0, **DETECT)
        started = time.monotonic()
        trial = run_wire_trial(
            spec, journal_dir=str(tmp_path / "journal"), kill_after=(3, 2)
        )
        elapsed = time.monotonic() - started
        assert not trial.ok
        assert "heartbeat detector suspects node(s) [3]" in trial.reason
        # Failed fast: well within the trial timeout, bounded by the
        # detector (0.3 s) plus round/teardown overhead.
        assert elapsed < spec.trial_timeout / 4

    def test_failed_trial_journal_records_the_reason(self, tmp_path):
        spec = WireSpec(protocol="election", n=8, seed=0, **DETECT)
        journal = tmp_path / "journal"
        trial = run_wire_trial(spec, journal_dir=str(journal), kill_after=(5, 1))
        assert not trial.ok
        result = json.loads((journal / "result.json").read_text())
        assert result["ok"] is False
        assert "suspects" in result["reason"]
        assert (journal / "coordinator.jsonl").exists()
        # Every node process left a log (stderr tracebacks land there too).
        logs = sorted(p.name for p in journal.glob("node-*.log"))
        assert logs == [f"node-{u}.log" for u in range(spec.n)]


class TestJournals:
    def test_coordinator_journal_is_replayable_jsonl(self, tmp_path):
        spec = WireSpec(protocol="election", n=8, seed=0, **FAST)
        spec = spec.with_(script=default_script(spec))
        journal = tmp_path / "journal"
        trial = run_wire_trial(spec, journal_dir=str(journal))
        assert trial.ok, trial.reason
        events = [
            json.loads(line)
            for line in (journal / "coordinator.jsonl").read_text().splitlines()
        ]
        kinds = [e["event"] for e in events]
        assert kinds.count("hello") == spec.n
        crash_events = [e for e in events if e["event"] == "crash"]
        assert {e["node"] for e in crash_events} == set(trial.crashed)
        result = json.loads((journal / "result.json").read_text())
        assert result["ok"] is True
        assert result["metrics"]["messages_sent"] == trial.metrics.messages_sent
