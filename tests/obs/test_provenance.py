"""Tests for provenance manifests (repro.obs.provenance)."""

import json

from repro.obs import (
    MANIFEST_RECORD_KIND,
    Manifest,
    capture_manifest,
    is_manifest_record,
    load_manifest,
)


class TestCaptureManifest:
    def test_captures_environment(self):
        manifest = capture_manifest(
            "sweep",
            master_seed=42,
            config={"grid": {"n": [32, 64]}, "trials": 5},
            argv=["repro", "sweep", "--trials", "5"],
        )
        assert manifest.command == "sweep"
        assert manifest.master_seed == 42
        assert manifest.config["trials"] == 5
        assert manifest.argv == ["repro", "sweep", "--trials", "5"]
        assert manifest.package["name"] == "repro"
        assert manifest.package["version"]
        assert manifest.python["version"]
        assert manifest.machine["platform"]
        assert manifest.created_at  # ISO timestamp

    def test_extra_is_carried(self):
        manifest = capture_manifest("fuzz", master_seed=0, extra={"journal": "f.jsonl"})
        assert manifest.extra["journal"] == "f.jsonl"


class TestRoundTrip:
    def test_dict_round_trip(self):
        manifest = capture_manifest("run", master_seed=7, config={"quick": True})
        clone = Manifest.from_dict(manifest.to_dict())
        assert clone == manifest

    def test_json_serializable(self):
        manifest = capture_manifest("sweep", master_seed=1)
        # Must survive json round-trip (written to .manifest.json files).
        rebuilt = Manifest.from_dict(json.loads(json.dumps(manifest.to_dict())))
        assert rebuilt == manifest

    def test_write_and_load(self, tmp_path):
        path = tmp_path / "campaign.manifest.json"
        manifest = capture_manifest("fuzz", master_seed=3, config={"n": 32})
        manifest.write(path)
        loaded = load_manifest(path)
        assert loaded == manifest


class TestJournalRecord:
    def test_journal_record_kind_and_no_key(self):
        record = capture_manifest("sweep", master_seed=0).journal_record()
        assert record["kind"] == MANIFEST_RECORD_KIND
        # No "key"/"status": load_completed must skip manifest records.
        assert "key" not in record
        assert "status" not in record
        assert is_manifest_record(record)

    def test_is_manifest_record_rejects_trials(self):
        assert not is_manifest_record({"key": "elect@3", "status": "ok"})
        assert not is_manifest_record({})
        assert not is_manifest_record({"kind": "trial"})
