"""Tests for phase timers (repro.obs.timing)."""

import time

import pytest

from repro.obs import (
    ENGINE_PHASES,
    NULL_TIMERS,
    PHASE_CRASH,
    PHASE_DELIVER,
    PHASE_STEP,
    PHASE_TRANSMIT,
    PhaseTimers,
)


class TestPhaseTimers:
    def test_add_accumulates_per_phase(self):
        timers = PhaseTimers()
        timers.add(PHASE_STEP, 0.25)
        timers.add(PHASE_STEP, 0.25)
        timers.add(PHASE_DELIVER, 1.0)
        assert timers.totals[PHASE_STEP] == pytest.approx(0.5)
        assert timers.totals[PHASE_DELIVER] == pytest.approx(1.0)
        assert timers.counts[PHASE_STEP] == 2
        assert timers.counts[PHASE_DELIVER] == 1

    def test_disabled_add_is_a_noop(self):
        timers = PhaseTimers(enabled=False)
        timers.add(PHASE_STEP, 1.0)
        assert timers.totals == {}
        assert timers.counts == {}

    def test_timed_context_manager_measures(self):
        timers = PhaseTimers()
        with timers.timed("block"):
            time.sleep(0.01)
        assert timers.totals["block"] > 0.0
        assert timers.counts["block"] == 1

    def test_timed_disabled_records_nothing(self):
        timers = PhaseTimers(enabled=False)
        with timers.timed("block"):
            pass
        assert timers.totals == {}

    def test_as_dict_rounds_and_sorts(self):
        timers = PhaseTimers()
        timers.add("b", 0.1234567891)
        timers.add("a", 1.0)
        snapshot = timers.as_dict()
        assert list(snapshot) == ["a", "b"]
        assert snapshot["b"] == pytest.approx(0.123456789)

    def test_clear_resets(self):
        timers = PhaseTimers()
        timers.add(PHASE_TRANSMIT, 0.5)
        timers.clear()
        assert timers.totals == {}
        assert timers.counts == {}
        assert timers.enabled

    def test_null_timers_shared_and_disabled(self):
        assert NULL_TIMERS.enabled is False
        NULL_TIMERS.add(PHASE_CRASH, 1.0)
        assert NULL_TIMERS.totals == {}

    def test_engine_phase_constants(self):
        assert ENGINE_PHASES == (
            PHASE_STEP,
            PHASE_TRANSMIT,
            PHASE_CRASH,
            PHASE_DELIVER,
        )

    def test_disabled_overhead_is_tiny(self):
        """The no-op path must be cheap enough to leave on unconditionally.

        Bound the disabled ``add`` against a plain attribute check: it may
        cost a few times more (method call), but not orders of magnitude —
        a generous 50x ceiling catches accidental work on the no-op path
        without flaking on noisy CI boxes.
        """
        timers = PhaseTimers(enabled=False)
        iterations = 20000

        started = time.perf_counter()
        for _ in range(iterations):
            if timers.enabled:  # the gate the engine uses
                pass
        baseline = time.perf_counter() - started

        started = time.perf_counter()
        for _ in range(iterations):
            timers.add(PHASE_STEP, 0.0)
        noop_calls = time.perf_counter() - started

        assert noop_calls < max(baseline * 50, 0.05)
