"""Tests for campaign reports (repro.obs.report)."""

import pytest

from repro.exec import Journal
from repro.obs import (
    Campaign,
    capture_manifest,
    journal_counts,
    load_campaign,
    merge_journal_metrics,
    render_campaign_report,
)


def _trial(key, status="ok", value=None, attempts=1):
    return {"key": key, "status": status, "attempts": attempts, "value": value}


def _write_campaign(tmp_path, embed_manifest=True, sibling_manifest=False):
    """A two-trial journal, with the manifest embedded and/or as sibling."""
    journal_path = tmp_path / "campaign.jsonl"
    manifest = capture_manifest(
        "fuzz",
        master_seed=5,
        config={"n": 32},
        argv=["repro", "fuzz", "--n", "32"],
        extra={"journal": str(journal_path)},
    )
    journal = Journal(journal_path)
    if embed_manifest:
        journal.append(manifest.journal_record())
    journal.append(
        _trial("a@1", value={"messages": 10, "success": True, "phase_seconds": {"step": 0.5}})
    )
    journal.append(
        _trial(
            "a@2",
            value={"messages": 30, "success": False, "phase_seconds": {"step": 1.5}},
            attempts=3,
        )
    )
    journal.append(_trial("a@3", status="failed", attempts=2))
    if sibling_manifest:
        manifest.write(journal_path.with_name(journal_path.name + ".manifest.json"))
    return journal_path, manifest


class TestLoadCampaign:
    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_campaign(tmp_path / "absent.jsonl")

    def test_journal_with_embedded_manifest(self, tmp_path):
        journal_path, manifest = _write_campaign(tmp_path)
        campaign = load_campaign(journal_path)
        assert campaign.manifest == manifest
        assert campaign.journal_path == journal_path
        assert len(campaign.trial_records) == 3  # manifest record excluded

    def test_journal_with_sibling_manifest(self, tmp_path):
        journal_path, manifest = _write_campaign(
            tmp_path, embed_manifest=False, sibling_manifest=True
        )
        campaign = load_campaign(journal_path)
        assert campaign.manifest == manifest
        assert len(campaign.trial_records) == 3

    def test_manifest_path_finds_journal(self, tmp_path):
        journal_path, manifest = _write_campaign(
            tmp_path, embed_manifest=False, sibling_manifest=True
        )
        manifest_path = journal_path.with_name(journal_path.name + ".manifest.json")
        campaign = load_campaign(manifest_path)
        assert campaign.manifest == manifest
        assert campaign.journal_path == journal_path
        assert len(campaign.trial_records) == 3

    def test_journal_without_manifest_still_loads(self, tmp_path):
        journal_path, _ = _write_campaign(tmp_path, embed_manifest=False)
        campaign = load_campaign(journal_path)
        assert campaign.manifest is None
        assert len(campaign.trial_records) == 3


class TestMergeJournalMetrics:
    def test_numeric_boolean_and_phases(self, tmp_path):
        journal_path, _ = _write_campaign(tmp_path)
        campaign = load_campaign(journal_path)
        merged = merge_journal_metrics(campaign.trial_records)
        assert merged["trials_with_values"] == 2
        assert merged["messages"] == {"total": 40.0, "mean": 20.0, "max": 30.0}
        assert merged["success"] == {"rate": 0.5, "count": 2}
        assert merged["phase_seconds"] == {"step": 2.0}

    def test_empty_records(self):
        assert merge_journal_metrics([]) == {"trials_with_values": 0}

    def test_non_mapping_values_skipped(self):
        merged = merge_journal_metrics(
            [_trial("a@1", value=[1, 2]), _trial("a@2", value={"rounds": 4})]
        )
        assert merged["trials_with_values"] == 1
        assert merged["rounds"]["total"] == 4.0


class TestJournalCounts:
    def test_status_histogram_and_retries(self, tmp_path):
        journal_path, _ = _write_campaign(tmp_path)
        campaign = load_campaign(journal_path)
        counts = journal_counts(campaign.records)
        assert counts["ok"] == 2
        assert counts["failed"] == 1
        # attempts 3 and 2 → 2 + 1 retries beyond the first.
        assert counts["retries"] == 3


class TestRenderCampaignReport:
    def test_all_sections_present(self, tmp_path):
        journal_path, _ = _write_campaign(tmp_path)
        report = render_campaign_report(load_campaign(journal_path))
        assert "campaign report — fuzz" in report
        assert "provenance" in report
        assert "master seed: 5" in report
        assert "journal" in report
        assert "trials journalled: 3" in report
        assert "merged metrics" in report
        assert "phase timings" in report

    def test_bare_campaign_renders_placeholders(self):
        report = render_campaign_report(Campaign())
        assert "<no manifest found>" in report
        assert "<no journal found>" in report
        assert "<no trial values to merge>" in report
