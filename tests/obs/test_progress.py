"""Tests for the live progress reporter (repro.obs.progress)."""

import io

from repro.obs import (
    NULL_PROGRESS,
    ProgressReporter,
    ensure_progress,
    format_duration,
    render_progress_line,
)


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


class TestFormatDuration:
    def test_sub_minute(self):
        assert format_duration(7.25) == "7.2s"

    def test_minutes(self):
        assert format_duration(75.4) == "1m15s"

    def test_hours(self):
        assert format_duration(3725) == "1h02m"

    def test_garbage(self):
        assert format_duration(-1) == "?"
        assert format_duration(float("nan")) == "?"


class TestRenderProgressLine:
    def test_basic_line_with_total(self):
        line = render_progress_line("sweep", completed=5, total=10, elapsed=2.0)
        assert line.startswith("[sweep] ")
        assert "5/10 (50%)" in line
        assert "2.5/s" in line
        assert "ETA 2.0s" in line
        assert "elapsed 2.0s" in line

    def test_unknown_total_suppresses_percent_and_eta(self):
        line = render_progress_line("fuzz", completed=3, total=None, elapsed=1.0)
        assert "3 done" in line
        assert "%" not in line
        assert "ETA" not in line

    def test_retry_and_quarantine_counts(self):
        line = render_progress_line(
            "run",
            completed=4,
            total=8,
            elapsed=1.0,
            attempted=6,
            failed=1,
            retries=2,
            quarantined=1,
        )
        assert "attempted 6" in line
        assert "failed 1" in line
        assert "retries 2" in line
        assert "quarantined 1" in line

    def test_attempted_equal_to_completed_is_hidden(self):
        line = render_progress_line(
            "sweep", completed=4, total=8, elapsed=1.0, attempted=4
        )
        assert "attempted" not in line

    def test_worker_utilisation(self):
        line = render_progress_line(
            "sweep", completed=1, total=4, elapsed=1.0, workers=4, busy=3
        )
        assert "workers 3/4" in line

    def test_single_worker_is_hidden(self):
        line = render_progress_line(
            "sweep", completed=1, total=4, elapsed=1.0, workers=1
        )
        assert "workers" not in line


class TestProgressReporter:
    def _reporter(self, **kwargs):
        clock = FakeClock()
        stream = io.StringIO()
        kwargs.setdefault("total", 10)
        kwargs.setdefault("label", "t")
        reporter = ProgressReporter(stream=stream, clock=clock, **kwargs)
        return reporter, clock, stream

    def test_emits_throttled_heartbeats(self):
        reporter, clock, stream = self._reporter(interval=1.0)
        reporter.advance(completed=1, attempted=1)  # t=0: first line
        reporter.advance(completed=1, attempted=1)  # still t=0: throttled
        clock.tick(1.5)
        reporter.advance(completed=1, attempted=1)  # due again
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert reporter.lines_emitted == 2
        assert "3/10" in lines[-1]

    def test_finish_always_emits(self):
        reporter, clock, stream = self._reporter(interval=100.0)
        reporter.advance(completed=10, attempted=10)
        reporter.finish()
        lines = stream.getvalue().splitlines()
        assert "10/10 (100%)" in lines[-1]

    def test_disabled_reporter_is_silent(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=5, stream=stream, enabled=False)
        reporter.advance(completed=5, attempted=5)
        reporter.set_workers(4)
        reporter.finish()
        assert stream.getvalue() == ""
        assert reporter.completed == 0

    def test_set_workers_shows_utilisation(self):
        reporter, clock, stream = self._reporter()
        reporter.set_workers(4, busy=2)
        reporter.advance(completed=1, attempted=1)
        assert "workers 2/4" in stream.getvalue()


class TestElapsedBaseline:
    """The elapsed/ETA baseline starts at the first *enabled* event."""

    def test_enabled_reporter_measures_from_construction(self):
        clock = FakeClock(start=100.0)
        reporter = ProgressReporter(total=4, stream=io.StringIO(), clock=clock)
        clock.tick(2.0)
        assert reporter.elapsed() == 2.0

    def test_late_enabled_reporter_does_not_count_disabled_time(self):
        clock = FakeClock(start=100.0)
        reporter = ProgressReporter(
            total=4, stream=io.StringIO(), clock=clock, enabled=False
        )
        assert reporter.started is None
        clock.tick(500.0)  # half an idle eternity while disabled
        reporter.enabled = True
        reporter.advance(completed=1, attempted=1)
        clock.tick(1.0)
        assert reporter.elapsed() == 1.0
        assert "elapsed 1.0s" in reporter.render()

    def test_elapsed_zero_before_any_event(self):
        clock = FakeClock(start=42.0)
        reporter = ProgressReporter(
            total=4, stream=io.StringIO(), clock=clock, enabled=False
        )
        reporter.enabled = True
        assert reporter.elapsed() == 0.0

    def test_never_negative(self):
        clock = FakeClock(start=10.0)
        reporter = ProgressReporter(total=4, stream=io.StringIO(), clock=clock)
        clock.now = 5.0  # clock anomaly
        assert reporter.elapsed() == 0.0


class TestAttemptedZero:
    """A true attempted=0 renders as a value, not as absence."""

    def test_render_line_shows_attempted_zero(self):
        line = render_progress_line(
            "cachehit", completed=4, total=4, elapsed=1.0, attempted=0
        )
        assert "attempted 0" in line

    def test_reporter_render_with_only_cached_completions(self):
        clock = FakeClock()
        reporter = ProgressReporter(
            total=3, label="served", stream=io.StringIO(), clock=clock
        )
        # Three trials answered from cache: completed, zero executions.
        reporter.advance(completed=3)
        clock.tick(1.0)
        assert "attempted 0" in reporter.render()


class TestSnapshot:
    def test_snapshot_is_a_progress_record(self):
        clock = FakeClock(start=7.0)
        reporter = ProgressReporter(
            total=10, label="job-1", stream=io.StringIO(), clock=clock
        )
        reporter.set_workers(4, busy=2)
        reporter.advance(completed=2, attempted=3, failed=1, retries=1)
        clock.tick(2.5)
        snap = reporter.snapshot()
        assert snap == {
            "kind": "progress",
            "label": "job-1",
            "completed": 2,
            "total": 10,
            "attempted": 3,
            "failed": 1,
            "retries": 1,
            "quarantined": 0,
            "restarts": 0,
            "workers": 4,
            "busy": 2,
            "elapsed_seconds": 2.5,
        }

    def test_snapshot_attempted_zero_survives(self):
        reporter = ProgressReporter(
            total=2, stream=io.StringIO(), clock=FakeClock()
        )
        reporter.advance(completed=2)
        assert reporter.snapshot()["attempted"] == 0


class TestEnsureProgress:
    def test_false_and_none_give_null(self):
        assert ensure_progress(False) is NULL_PROGRESS
        assert ensure_progress(None) is NULL_PROGRESS

    def test_true_builds_enabled_reporter(self):
        reporter = ensure_progress(True, total=7, label="x", stream=io.StringIO())
        assert reporter.enabled
        assert reporter.total == 7
        assert reporter.label == "x"

    def test_existing_reporter_passes_through(self):
        mine = ProgressReporter(total=None, stream=io.StringIO())
        out = ensure_progress(mine, total=12)
        assert out is mine
        assert out.total == 12  # filled in when unknown

    def test_existing_total_not_clobbered(self):
        mine = ProgressReporter(total=3, stream=io.StringIO())
        assert ensure_progress(mine, total=99).total == 3
