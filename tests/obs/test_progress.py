"""Tests for the live progress reporter (repro.obs.progress)."""

import io

from repro.obs import (
    NULL_PROGRESS,
    ProgressReporter,
    ensure_progress,
    format_duration,
    render_progress_line,
)


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


class TestFormatDuration:
    def test_sub_minute(self):
        assert format_duration(7.25) == "7.2s"

    def test_minutes(self):
        assert format_duration(75.4) == "1m15s"

    def test_hours(self):
        assert format_duration(3725) == "1h02m"

    def test_garbage(self):
        assert format_duration(-1) == "?"
        assert format_duration(float("nan")) == "?"


class TestRenderProgressLine:
    def test_basic_line_with_total(self):
        line = render_progress_line("sweep", completed=5, total=10, elapsed=2.0)
        assert line.startswith("[sweep] ")
        assert "5/10 (50%)" in line
        assert "2.5/s" in line
        assert "ETA 2.0s" in line
        assert "elapsed 2.0s" in line

    def test_unknown_total_suppresses_percent_and_eta(self):
        line = render_progress_line("fuzz", completed=3, total=None, elapsed=1.0)
        assert "3 done" in line
        assert "%" not in line
        assert "ETA" not in line

    def test_retry_and_quarantine_counts(self):
        line = render_progress_line(
            "run",
            completed=4,
            total=8,
            elapsed=1.0,
            attempted=6,
            failed=1,
            retries=2,
            quarantined=1,
        )
        assert "attempted 6" in line
        assert "failed 1" in line
        assert "retries 2" in line
        assert "quarantined 1" in line

    def test_attempted_equal_to_completed_is_hidden(self):
        line = render_progress_line(
            "sweep", completed=4, total=8, elapsed=1.0, attempted=4
        )
        assert "attempted" not in line

    def test_worker_utilisation(self):
        line = render_progress_line(
            "sweep", completed=1, total=4, elapsed=1.0, workers=4, busy=3
        )
        assert "workers 3/4" in line

    def test_single_worker_is_hidden(self):
        line = render_progress_line(
            "sweep", completed=1, total=4, elapsed=1.0, workers=1
        )
        assert "workers" not in line


class TestProgressReporter:
    def _reporter(self, **kwargs):
        clock = FakeClock()
        stream = io.StringIO()
        kwargs.setdefault("total", 10)
        kwargs.setdefault("label", "t")
        reporter = ProgressReporter(stream=stream, clock=clock, **kwargs)
        return reporter, clock, stream

    def test_emits_throttled_heartbeats(self):
        reporter, clock, stream = self._reporter(interval=1.0)
        reporter.advance(completed=1, attempted=1)  # t=0: first line
        reporter.advance(completed=1, attempted=1)  # still t=0: throttled
        clock.tick(1.5)
        reporter.advance(completed=1, attempted=1)  # due again
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert reporter.lines_emitted == 2
        assert "3/10" in lines[-1]

    def test_finish_always_emits(self):
        reporter, clock, stream = self._reporter(interval=100.0)
        reporter.advance(completed=10, attempted=10)
        reporter.finish()
        lines = stream.getvalue().splitlines()
        assert "10/10 (100%)" in lines[-1]

    def test_disabled_reporter_is_silent(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=5, stream=stream, enabled=False)
        reporter.advance(completed=5, attempted=5)
        reporter.set_workers(4)
        reporter.finish()
        assert stream.getvalue() == ""
        assert reporter.completed == 0

    def test_set_workers_shows_utilisation(self):
        reporter, clock, stream = self._reporter()
        reporter.set_workers(4, busy=2)
        reporter.advance(completed=1, attempted=1)
        assert "workers 2/4" in stream.getvalue()


class TestEnsureProgress:
    def test_false_and_none_give_null(self):
        assert ensure_progress(False) is NULL_PROGRESS
        assert ensure_progress(None) is NULL_PROGRESS

    def test_true_builds_enabled_reporter(self):
        reporter = ensure_progress(True, total=7, label="x", stream=io.StringIO())
        assert reporter.enabled
        assert reporter.total == 7
        assert reporter.label == "x"

    def test_existing_reporter_passes_through(self):
        mine = ProgressReporter(total=None, stream=io.StringIO())
        out = ensure_progress(mine, total=12)
        assert out is mine
        assert out.total == 12  # filled in when unknown

    def test_existing_total_not_clobbered(self):
        mine = ProgressReporter(total=3, stream=io.StringIO())
        assert ensure_progress(mine, total=99).total == 3
