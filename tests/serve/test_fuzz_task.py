"""Fuzz campaigns through the serve streaming service (registry task "fuzz").

Byte-parity with a serial in-process sweep, same as the election task:
the fuzz verdicts are pure functions of (scenario, seed), so the service
must stream — and later answer from cache — exactly what
:func:`repro.parallel.tasks.fuzz_trial` computes serially.
"""

import time

import pytest

from repro.analysis.sweeps import sweep
from repro.exec import default_serialize
from repro.parallel.tasks import fuzz_trial
from repro.serve import CampaignService, parse_campaign_spec
from repro.serve.cache import canonical_json
from repro.serve.service import TASKS

GRID = {"protocol": ["election"], "n": [16]}
SPEC = {"task": "fuzz", "grid": GRID, "trials": 2, "master_seed": 0}


def wait_done(job, timeout=60.0):
    deadline = time.monotonic() + timeout
    while not job.done:
        if time.monotonic() > deadline:
            raise AssertionError(f"job {job.id} still {job.state}")
        time.sleep(0.01)
    assert job.state == "done", job.error
    return job


@pytest.fixture
def service(tmp_path):
    service = CampaignService(cache_dir=tmp_path / "cache")
    yield service
    service.close()


class TestRegistration:
    def test_fuzz_resolves_from_the_registry(self):
        assert TASKS["fuzz"] == "repro.parallel.tasks:fuzz_trial"
        spec = parse_campaign_spec(SPEC, TASKS)
        assert spec.task_ref == TASKS["fuzz"]
        assert spec.grid == {"protocol": ["election"], "n": [16]}


class TestExecution:
    def test_streamed_verdicts_match_the_serial_sweep(self, service):
        job = wait_done(service.submit(SPEC))
        summary = job.summary
        assert summary["failed"] == 0
        reference = [
            {
                "point": point,
                "results": [default_serialize(v) for v in results],
                "failed": 0,
            }
            for point, results in sweep(
                fuzz_trial, GRID, trials=2, master_seed=0
            )
        ]
        assert canonical_json(summary["points"]) == canonical_json(reference)

    def test_verdicts_have_the_fuzz_shape(self, service):
        job = wait_done(service.submit(SPEC))
        trials = [r for r in job.records if "status" in r]
        assert len(trials) == 2
        for record in trials:
            assert record["status"] == "ok"
            verdict = record["value"]
            assert verdict["protocol"] == "election"
            assert verdict["n"] == 16
            assert "failed" in verdict
            if verdict["failed"]:
                assert "case" in verdict  # replayable reproducer rides along

    def test_resubmission_is_served_from_cache(self, service):
        first = wait_done(service.submit(SPEC))
        second = wait_done(service.submit(SPEC))
        assert second.summary["cache_hits"] == 2
        assert second.summary["cache_misses"] == 0
        assert canonical_json(second.summary["points"]) == canonical_json(
            first.summary["points"]
        )
