"""Tests for the asyncio HTTP front (repro.serve.http).

These go through real sockets on the loopback interface — urllib client
against the served port — so request parsing, chunked streaming, and
connection teardown are exercised exactly as a client sees them.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.exec.journal import CRC_KEY, SEQ_KEY, record_crc
from repro.serve import CampaignServer, CampaignService
from repro.serve.cache import canonical_json

SPEC = {
    "task": "election",
    "grid": {"n": [24, 32], "alpha": [0.5]},
    "trials": 2,
    "master_seed": 11,
}


@pytest.fixture
def server(tmp_path):
    service = CampaignService(cache_dir=tmp_path / "cache")
    server = CampaignServer(service)  # port 0: pick a free one
    server.start()
    yield server
    server.stop()
    service.close()


def base_url(server):
    return f"http://127.0.0.1:{server.port}"


def get_json(server, path):
    with urllib.request.urlopen(base_url(server) + path, timeout=30) as resp:
        return resp.status, json.load(resp)


def post_json(server, path, payload):
    request = urllib.request.Request(
        base_url(server) + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as resp:
        return resp.status, json.load(resp)


def stream_records(server, path):
    with urllib.request.urlopen(base_url(server) + path, timeout=120) as resp:
        assert resp.headers.get("Transfer-Encoding") == "chunked"
        return [json.loads(line) for line in resp.read().decode().splitlines()]


class TestEndpoints:
    def test_health(self, server):
        status, payload = get_json(server, "/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["version"]

    def test_tasks_lists_the_registry(self, server):
        _, payload = get_json(server, "/tasks")
        assert payload["election"] == "repro.parallel.tasks:election_trial"

    def test_cache_stats(self, server):
        _, payload = get_json(server, "/cache")
        assert payload["entries"] == 0

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(server, "/nope")
        assert excinfo.value.code == 404

    def test_unknown_job_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(server, "/campaigns/job-9999")
        assert excinfo.value.code == 404

    def test_bad_json_body_is_400(self, server):
        request = urllib.request.Request(
            base_url(server) + "/campaigns", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_invalid_spec_is_400_with_reason(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(server, "/campaigns", {"task": "nope", "grid": {"n": [8]}})
        assert excinfo.value.code == 400
        assert "nope" in json.load(excinfo.value)["error"]


class TestCampaignFlow:
    def test_submit_stream_and_status(self, server):
        status, submitted = post_json(server, "/campaigns", SPEC)
        assert status == 202
        assert submitted["job"] == "job-0001"

        records = stream_records(server, submitted["stream_url"])
        assert [r[SEQ_KEY] for r in records] == list(range(len(records)))
        for sealed in records:
            payload = {
                k: v for k, v in sealed.items() if k not in (CRC_KEY, SEQ_KEY)
            }
            assert sealed[CRC_KEY] == record_crc(payload)
        summary = records[-1]
        assert summary["kind"] == "summary"
        assert summary["completed"] == 4

        _, described = get_json(server, submitted["status_url"])
        assert described["state"] == "done"
        assert described["summary"]["completed"] == 4

        _, listing = get_json(server, "/campaigns")
        assert [job["job"] for job in listing] == ["job-0001"]

    def test_stream_of_finished_job_replays_full_history(self, server):
        _, submitted = post_json(server, "/campaigns", SPEC)
        live = stream_records(server, submitted["stream_url"])
        replay = stream_records(server, submitted["stream_url"])
        assert canonical_json(replay) == canonical_json(live)

    def test_http_resubmission_hits_cache(self, server):
        _, first = post_json(server, "/campaigns", SPEC)
        first_records = stream_records(server, first["stream_url"])
        _, second = post_json(server, "/campaigns", SPEC)
        second_records = stream_records(server, second["stream_url"])
        summary = second_records[-1]
        assert summary["cache_hits"] == 4
        assert summary["dispatched_trials"] == 0
        assert summary["dispatched_chunks"] == 0
        assert canonical_json(summary["points"]) == canonical_json(
            first_records[-1]["points"]
        )
