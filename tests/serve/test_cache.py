"""Tests for the persistent trial-result cache (repro.serve.cache)."""

import json
import os

import pytest

from repro.serve.cache import (
    ResultCache,
    cache_key_digest,
    cache_key_payload,
    canonical_json,
)

TASK = "repro.parallel.tasks:election_trial"


class TestKeying:
    def test_key_is_canonical_over_point_order(self):
        a = cache_key_payload(TASK, {"n": 64, "alpha": 0.5}, 7)
        b = cache_key_payload(TASK, {"alpha": 0.5, "n": 64}, 7)
        assert cache_key_digest(a) == cache_key_digest(b)

    def test_key_separates_task_point_and_seed(self):
        base = cache_key_digest(cache_key_payload(TASK, {"n": 64}, 7))
        assert base != cache_key_digest(cache_key_payload(TASK, {"n": 65}, 7))
        assert base != cache_key_digest(cache_key_payload(TASK, {"n": 64}, 8))
        assert base != cache_key_digest(
            cache_key_payload("other:task", {"n": 64}, 7)
        )

    def test_backend_is_not_part_of_the_key(self):
        # Backends are exact-parity by contract: the payload simply has
        # no backend field, so vec-computed results serve ref requests.
        assert "backend" not in cache_key_payload(TASK, {"n": 64}, 7)


class TestHitMiss:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        hit, _ = cache.get(TASK, {"n": 64}, 7)
        assert not hit
        cache.put(TASK, {"n": 64}, 7, {"messages": 123})
        hit, value = cache.get(TASK, {"n": 64}, 7)
        assert hit
        assert value == {"messages": 123}
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_cached_none_is_a_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(TASK, {"n": 64}, 7, None)
        hit, value = cache.get(TASK, {"n": 64}, 7)
        assert hit and value is None

    def test_round_trip_is_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        value = {"messages": 411687, "elected": True, "rounds": 3, "bits": 1.5}
        cache.put(TASK, {"n": 512, "alpha": 0.5}, 2, value)
        _, cached = cache.get(TASK, {"n": 512, "alpha": 0.5}, 2)
        assert canonical_json(cached) == canonical_json(value)

    def test_survives_reopen(self, tmp_path):
        ResultCache(tmp_path).put(TASK, {"n": 64}, 7, {"messages": 9})
        reopened = ResultCache(tmp_path)
        hit, value = reopened.get(TASK, {"n": 64}, 7)
        assert hit and value == {"messages": 9}

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(TASK, {"n": 64}, 7, {"messages": 9})
        path = cache.entry_path(
            cache_key_digest(cache_key_payload(TASK, {"n": 64}, 7))
        )
        path.write_text("not json at all")
        hit, _ = cache.get(TASK, {"n": 64}, 7)
        assert not hit

    def test_key_collision_degrades_to_miss_not_wrong_answer(self, tmp_path):
        """A foreign payload under our digest must never be returned."""
        cache = ResultCache(tmp_path)
        cache.put(TASK, {"n": 64}, 7, {"messages": 9})
        path = cache.entry_path(
            cache_key_digest(cache_key_payload(TASK, {"n": 64}, 7))
        )
        foreign = {"key": cache_key_payload(TASK, {"n": 9999}, 7), "value": 1}
        path.write_text(json.dumps(foreign))
        hit, _ = cache.get(TASK, {"n": 64}, 7)
        assert not hit

    def test_contains_does_not_move_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(TASK, {"n": 64}, 7, 1)
        assert cache.contains(TASK, {"n": 64}, 7)
        assert not cache.contains(TASK, {"n": 65}, 7)
        assert (cache.hits, cache.misses) == (0, 0)


class TestEviction:
    def test_lru_eviction_keeps_recently_used(self, tmp_path):
        cache = ResultCache(tmp_path)
        for seed in range(4):
            cache.put(TASK, {"n": 64}, seed, seed)
            os.utime(
                cache.entry_path(
                    cache_key_digest(cache_key_payload(TASK, {"n": 64}, seed))
                ),
                (seed + 1, seed + 1),  # deterministic mtime order
            )
        dropped = cache.evict(keep=2)
        assert dropped == 2
        assert cache.entries() == 2
        assert not cache.get(TASK, {"n": 64}, 0)[0]  # oldest: gone
        assert not cache.get(TASK, {"n": 64}, 1)[0]
        assert cache.get(TASK, {"n": 64}, 2)[0]  # newest: kept
        assert cache.get(TASK, {"n": 64}, 3)[0]

    def test_max_entries_bounds_inserts(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=3)
        for seed in range(6):
            cache.put(TASK, {"n": 64}, seed, seed)
        assert cache.entries() <= 3
        assert cache.evictions >= 3

    def test_stats_shape(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=10)
        cache.put(TASK, {"n": 64}, 0, 1)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["max_entries"] == 10
        assert stats["root"] == str(tmp_path)

    def test_bad_max_entries_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_entries=0)


class TestCanary:
    """The acceptance canary: elect n=512/seed=2 → 411687 messages,
    identical through the fresh and cached paths."""

    def test_fresh_and_cached_paths_agree_on_411687(self, tmp_path):
        from repro.exec import default_serialize
        from repro.parallel.tasks import election_trial

        fresh = default_serialize(election_trial(seed=2, n=512, alpha=0.5))
        assert fresh["messages"] == 411687
        cache = ResultCache(tmp_path)
        cache.put(TASK, {"n": 512, "alpha": 0.5}, 2, fresh)
        hit, cached = cache.get(TASK, {"n": 512, "alpha": 0.5}, 2)
        assert hit
        assert cached["messages"] == 411687
        assert canonical_json(cached) == canonical_json(fresh)
