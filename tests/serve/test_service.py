"""Tests for the campaign service core (repro.serve.service).

Byte-parity is asserted the way clients would see it: canonical JSON of
the streamed/cached values against a serial in-process reference run.
"""

import time

import pytest

from repro.analysis.sweeps import sweep
from repro.errors import ConfigurationError
from repro.exec import default_serialize
from repro.exec.journal import CRC_KEY, SEQ_KEY, record_crc
from repro.optdeps import have_numpy
from repro.parallel.tasks import election_trial
from repro.serve import CampaignService, parse_campaign_spec
from repro.serve.cache import canonical_json
from repro.serve.service import TASKS

GRID = {"n": [24, 32], "alpha": [0.5]}
SPEC = {"task": "election", "grid": GRID, "trials": 2, "master_seed": 11}


def wait_done(job, timeout=60.0):
    deadline = time.monotonic() + timeout
    while not job.done:
        if time.monotonic() > deadline:
            raise AssertionError(f"job {job.id} still {job.state}")
        time.sleep(0.01)
    assert job.state == "done", job.error
    return job


def serial_reference(grid=GRID, trials=2, master_seed=11):
    rows = sweep(election_trial, grid, trials=trials, master_seed=master_seed)
    return [
        {
            "point": point,
            "results": [default_serialize(value) for value in results],
            "failed": 0,
        }
        for point, results in rows
    ]


@pytest.fixture
def service(tmp_path):
    service = CampaignService(cache_dir=tmp_path / "cache")
    yield service
    service.close()


class TestValidation:
    def test_unknown_task_names_the_registry(self):
        with pytest.raises(ConfigurationError, match="election"):
            parse_campaign_spec({"task": "nope", "grid": GRID}, TASKS)

    def test_task_refs_rejected_by_default(self):
        payload = {"task": "repro.parallel.tasks:election_trial", "grid": GRID}
        with pytest.raises(ConfigurationError):
            parse_campaign_spec(payload, TASKS)
        spec = parse_campaign_spec(payload, TASKS, allow_task_refs=True)
        assert spec.task_ref == "repro.parallel.tasks:election_trial"

    def test_dangling_task_ref_fails_at_submission(self):
        payload = {"task": "repro.nonexistent:thing", "grid": GRID}
        with pytest.raises(ConfigurationError):
            parse_campaign_spec(payload, TASKS, allow_task_refs=True)

    @pytest.mark.parametrize(
        "broken",
        [
            "not an object",
            {"grid": GRID},
            {"task": "election"},
            {"task": "election", "grid": {}},
            {"task": "election", "grid": {"n": []}},
            {"task": "election", "grid": {"n": "32"}},
            {"task": "election", "grid": GRID, "trials": 0},
            {"task": "election", "grid": GRID, "trials": True},
            {"task": "election", "grid": GRID, "master_seed": "x"},
            {"task": "election", "grid": GRID, "jobs": -1},
            {"task": "election", "grid": GRID, "timeout_seconds": 0},
            {"task": "election", "grid": GRID, "backend": 3},
        ],
    )
    def test_malformed_payloads_rejected(self, broken):
        with pytest.raises(ConfigurationError):
            parse_campaign_spec(broken, TASKS)

    def test_registry_names_resolve(self):
        spec = parse_campaign_spec(SPEC, TASKS)
        assert spec.task_ref == TASKS["election"]
        assert spec.grid == {"n": [24, 32], "alpha": [0.5]}


class TestExecution:
    def test_fresh_campaign_matches_serial_sweep(self, service):
        job = wait_done(service.submit(SPEC))
        summary = job.summary
        assert summary["cache_hits"] == 0
        assert summary["cache_misses"] == 4
        assert summary["failed"] == 0
        assert canonical_json(summary["points"]) == canonical_json(
            serial_reference()
        )

    def test_stream_records_are_sealed_and_ordered(self, service):
        job = wait_done(service.submit(SPEC))
        records = job.records
        assert [r[SEQ_KEY] for r in records] == list(range(len(records)))
        for sealed in records:
            payload = {
                k: v for k, v in sealed.items() if k not in (CRC_KEY, SEQ_KEY)
            }
            assert sealed[CRC_KEY] == record_crc(payload)
        kinds = [r.get("kind") or r.get("status") for r in records]
        assert kinds[0] == "campaign"
        assert kinds[-1] == "summary"
        assert kinds.count("ok") == 4

    def test_trial_records_reassemble_by_index(self, service):
        job = wait_done(service.submit(SPEC))
        trials = [r for r in job.records if "status" in r]
        values = {r["index"]: r["value"] for r in trials if r["value"]}
        flat = [values[i] for i in range(4)]
        reference = [v for row in serial_reference() for v in row["results"]]
        assert canonical_json(flat) == canonical_json(reference)

    def test_resubmission_is_served_entirely_from_cache(self, service):
        first = wait_done(service.submit(SPEC))
        second = wait_done(service.submit(SPEC))
        summary = second.summary
        assert summary["cache_hits"] == 4
        assert summary["cache_misses"] == 0
        assert summary["dispatched_trials"] == 0
        assert summary["dispatched_chunks"] == 0
        assert canonical_json(summary["points"]) == canonical_json(
            first.summary["points"]
        )
        statuses = [r["status"] for r in second.records if "status" in r]
        assert statuses == ["cached"] * 4

    def test_overlapping_campaign_reuses_the_overlap(self, service):
        wait_done(service.submit(SPEC))
        bigger = dict(SPEC, grid={"n": [24, 32, 40], "alpha": [0.5]})
        job = wait_done(service.submit(bigger))
        # The n=24/n=32 points are answered from cache; only n=40 runs.
        assert job.summary["cache_hits"] == 4
        assert job.summary["dispatched_trials"] == 2
        assert canonical_json(job.summary["points"]) == canonical_json(
            serial_reference(grid=bigger["grid"])
        )

    def test_concurrent_submissions_dedup_to_one_computation(self, service):
        # Both jobs enqueue before either runs; the single drainer runs
        # them in order, so the second finds the first's cache entries.
        first = service.submit(SPEC)
        second = service.submit(SPEC)
        wait_done(first)
        wait_done(second)
        total_dispatched = (
            first.summary["dispatched_trials"]
            + second.summary["dispatched_trials"]
        )
        assert total_dispatched == 4  # unique trials, computed once
        assert second.summary["cache_hits"] == 4

    def test_cache_survives_service_restart(self, tmp_path):
        service = CampaignService(cache_dir=tmp_path / "cache")
        try:
            first = wait_done(service.submit(SPEC))
        finally:
            service.close()
        reborn = CampaignService(cache_dir=tmp_path / "cache")
        try:
            job = wait_done(reborn.submit(SPEC))
        finally:
            reborn.close()
        assert job.summary["cache_hits"] == 4
        assert job.summary["dispatched_trials"] == 0
        assert canonical_json(job.summary["points"]) == canonical_json(
            first.summary["points"]
        )

    def test_failing_job_is_isolated(self, tmp_path):
        service = CampaignService(
            cache_dir=tmp_path / "cache", allow_task_refs=True
        )
        try:
            # elect_leader rejects alpha >= 1: every trial fails, the job
            # finishes "done" with failure accounting, not a dead worker.
            bad = {
                "task": "election",
                "grid": {"n": [24], "alpha": [2.0]},
                "trials": 1,
            }
            job = wait_done(service.submit(bad))
            assert job.summary["failed"] == 1
            assert job.summary["points"][0]["results"] == []
            # The service still works afterwards.
            ok = wait_done(service.submit(SPEC))
            assert ok.summary["completed"] == 4
        finally:
            service.close()

    def test_jobs4_campaign_is_byte_identical_to_serial(self, service):
        job = wait_done(service.submit(dict(SPEC, jobs=4)))
        assert job.summary["dispatched_chunks"] > 0
        assert canonical_json(job.summary["points"]) == canonical_json(
            serial_reference()
        )

    @pytest.mark.skipif(not have_numpy(), reason="vec backend needs numpy")
    def test_vec_backend_results_serve_ref_requests(self, service):
        vec = wait_done(service.submit(dict(SPEC, backend="vec")))
        assert vec.summary["cache_misses"] == 4
        # Same campaign without the backend: exact parity means every
        # trial is answered from the vec-computed entries.
        ref = wait_done(service.submit(SPEC))
        assert ref.summary["cache_hits"] == 4
        assert ref.summary["dispatched_trials"] == 0
        assert canonical_json(ref.summary["points"]) == canonical_json(
            serial_reference()
        )

    def test_progress_records_carry_counters(self, tmp_path):
        service = CampaignService(cache_dir=tmp_path / "cache", progress_every=1)
        try:
            job = wait_done(service.submit(SPEC))
        finally:
            service.close()
        progress = [r for r in job.records if r.get("kind") == "progress"]
        assert progress, "expected streamed progress records"
        final = progress[-1]
        assert final["completed"] == 4
        assert final["total"] == 4

    def test_describe_shape(self, service):
        job = wait_done(service.submit(SPEC))
        described = job.describe()
        assert described["job"] == job.id
        assert described["state"] == "done"
        assert described["spec"]["task"] == "election"
        assert described["summary"]["total_trials"] == 4
