"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "E5"])
        assert args.experiment == "E5"
        assert not args.quick

    def test_elect_defaults(self):
        args = build_parser().parse_args(["elect"])
        assert args.n == 512
        assert args.alpha == 0.5

    def test_run_resilient_flags(self):
        args = build_parser().parse_args(
            ["run", "E5", "--resume", "--trial-timeout", "30", "--retries", "2"]
        )
        assert args.resume
        assert args.trial_timeout == 30.0
        assert args.retries == 2
        plain = build_parser().parse_args(["run", "E5"])
        assert not plain.resume and plain.retries == 0
        assert plain.trial_timeout is None and plain.journal is None

    def test_fuzz_defaults(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.seeds == 50
        assert args.protocol == "both"
        assert args.budget_seconds is None
        assert args.jobs == 1

    def test_jobs_flags(self):
        assert build_parser().parse_args(["run", "E5"]).jobs == 1
        assert build_parser().parse_args(["run", "E5", "--jobs", "4"]).jobs == 4
        assert build_parser().parse_args(["fuzz", "--jobs", "0"]).jobs == 0
        assert build_parser().parse_args(["sweep", "--jobs", "2"]).jobs == 2

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.task == "election"
        assert args.n == "64,128"
        assert args.trials == 5
        assert args.jobs == 1
        assert args.out is None

    def test_replay_requires_script(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay"])


class TestCommands:
    def test_params_command(self, capsys):
        assert main(["params", "--n", "512", "--alpha", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "candidate probability" in out
        assert "referees per candidate" in out

    def test_elect_command(self, capsys):
        code = main(
            ["elect", "--n", "96", "--alpha", "0.5", "--seed", "3",
             "--adversary", "staggered"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "leader election" in out

    def test_agree_command(self, capsys):
        code = main(
            ["agree", "--n", "96", "--alpha", "0.5", "--seed", "3",
             "--inputs", "single0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "agreement" in out

    def test_run_command_quick(self, capsys):
        assert main(["run", "E5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E5" in out
        assert "PASS" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "E99"])

    def test_fuzz_command_clean(self, capsys):
        code = main(["fuzz", "--seeds", "2", "--protocol", "election"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 failure(s)" in out

    def test_replay_command_round_trips(self, tmp_path, capsys):
        from repro.chaos import CrashScript, DeliveryFilter

        script = CrashScript(
            faulty=(1,), crashes={1: (2, DeliveryFilter(kind="drop_all"))}
        )
        path = tmp_path / "script.json"
        path.write_text(script.to_json())
        code = main(["replay", str(path), "--protocol", "election", "--n", "64"])
        out = capsys.readouterr().out
        assert code == 0
        assert "CLEAN" in out

    def test_replay_flags_malformed_script(self, tmp_path, capsys):
        from repro.chaos import CrashScript, DeliveryFilter

        broken = CrashScript(
            faulty=(), crashes={50: (3, DeliveryFilter(kind="drop_all"))}
        )
        path = tmp_path / "broken.json"
        path.write_text(broken.to_json())
        code = main(["replay", str(path), "--protocol", "election", "--n", "64"])
        out = capsys.readouterr().out
        assert code == 1
        assert "VIOLATION" in out

    def test_run_with_journal_and_resume(self, tmp_path, capsys):
        journal = str(tmp_path / "run.jsonl")
        assert main(["run", "E5", "--quick", "--journal", journal]) == 0
        capsys.readouterr()
        # Second invocation resumes from the journal without re-running.
        assert main(["run", "E5", "--quick", "--journal", journal, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "1 attempted, 1 completed, 0 failed" in out
        assert "E5" in out and "PASS" in out

    def test_sweep_command_parallel_matches_serial(self, tmp_path, capsys):
        import json as json_module

        serial_out = str(tmp_path / "serial.json")
        parallel_out = str(tmp_path / "parallel.json")
        base = ["sweep", "--task", "election", "--n", "32", "--alpha", "0.75",
                "--trials", "2", "--seed", "4"]
        assert main(base + ["--jobs", "1", "--out", serial_out]) == 0
        assert main(base + ["--jobs", "2", "--out", parallel_out]) == 0
        out = capsys.readouterr().out
        assert "election sweep" in out
        with open(serial_out) as handle:
            serial = json_module.load(handle)
        with open(parallel_out) as handle:
            parallel = json_module.load(handle)
        assert serial["points"] == parallel["points"]

    def test_fuzz_command_with_jobs(self, capsys):
        code = main(["fuzz", "--seeds", "2", "--protocol", "election",
                     "--n", "24", "--jobs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 failure(s)" in out
