"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "E5"])
        assert args.experiment == "E5"
        assert not args.quick

    def test_elect_defaults(self):
        args = build_parser().parse_args(["elect"])
        assert args.n == 512
        assert args.alpha == 0.5

    def test_run_resilient_flags(self):
        args = build_parser().parse_args(
            ["run", "E5", "--resume", "--trial-timeout", "30", "--retries", "2"]
        )
        assert args.resume
        assert args.trial_timeout == 30.0
        assert args.retries == 2
        plain = build_parser().parse_args(["run", "E5"])
        assert not plain.resume and plain.retries == 0
        assert plain.trial_timeout is None and plain.journal is None

    def test_fuzz_defaults(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.seeds == 50
        assert args.protocol == "both"
        assert args.budget_seconds is None
        assert args.jobs == 1

    def test_jobs_flags(self):
        assert build_parser().parse_args(["run", "E5"]).jobs == 1
        assert build_parser().parse_args(["run", "E5", "--jobs", "4"]).jobs == 4
        assert build_parser().parse_args(["fuzz", "--jobs", "0"]).jobs == 0
        assert build_parser().parse_args(["sweep", "--jobs", "2"]).jobs == 2

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.task == "election"
        assert args.n == "64,128"
        assert args.trials == 5
        assert args.jobs == 1
        assert args.out is None

    def test_replay_requires_script(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay"])

    def test_observability_flags(self):
        sweep = build_parser().parse_args(
            ["sweep", "--progress", "--profile", "--manifest", "m.json"]
        )
        assert sweep.progress and sweep.profile
        assert sweep.manifest == "m.json"
        fuzz = build_parser().parse_args(
            ["fuzz", "--progress", "--journal", "f.jsonl"]
        )
        assert fuzz.progress and fuzz.journal == "f.jsonl"
        assert build_parser().parse_args(["run", "E5", "--progress"]).progress
        report = build_parser().parse_args(["report", "f.jsonl"])
        assert report.campaign == "f.jsonl"
        assert build_parser().parse_args(["report"]).campaign is None


class TestCommands:
    def test_params_command(self, capsys):
        assert main(["params", "--n", "512", "--alpha", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "candidate probability" in out
        assert "referees per candidate" in out

    def test_elect_command(self, capsys):
        code = main(
            ["elect", "--n", "96", "--alpha", "0.5", "--seed", "3",
             "--adversary", "staggered"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "leader election" in out

    def test_agree_command(self, capsys):
        code = main(
            ["agree", "--n", "96", "--alpha", "0.5", "--seed", "3",
             "--inputs", "single0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "agreement" in out

    def test_run_command_quick(self, capsys):
        assert main(["run", "E5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E5" in out
        assert "PASS" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "E99"])

    def test_fuzz_command_clean(self, capsys):
        code = main(["fuzz", "--seeds", "2", "--protocol", "election"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 failure(s)" in out

    def test_replay_command_round_trips(self, tmp_path, capsys):
        from repro.chaos import CrashScript, DeliveryFilter

        script = CrashScript(
            faulty=(1,), crashes={1: (2, DeliveryFilter(kind="drop_all"))}
        )
        path = tmp_path / "script.json"
        path.write_text(script.to_json())
        code = main(["replay", str(path), "--protocol", "election", "--n", "64"])
        out = capsys.readouterr().out
        assert code == 0
        assert "CLEAN" in out

    def test_replay_flags_malformed_script(self, tmp_path, capsys):
        from repro.chaos import CrashScript, DeliveryFilter

        broken = CrashScript(
            faulty=(), crashes={50: (3, DeliveryFilter(kind="drop_all"))}
        )
        path = tmp_path / "broken.json"
        path.write_text(broken.to_json())
        code = main(["replay", str(path), "--protocol", "election", "--n", "64"])
        out = capsys.readouterr().out
        assert code == 1
        assert "VIOLATION" in out

    def test_run_with_journal_and_resume(self, tmp_path, capsys):
        journal = str(tmp_path / "run.jsonl")
        assert main(["run", "E5", "--quick", "--journal", journal]) == 0
        capsys.readouterr()
        # Second invocation resumes from the journal without re-running.
        assert main(["run", "E5", "--quick", "--journal", journal, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "1 attempted, 1 completed, 0 failed" in out
        assert "E5" in out and "PASS" in out

    def test_sweep_command_parallel_matches_serial(self, tmp_path, capsys):
        import json as json_module

        serial_out = str(tmp_path / "serial.json")
        parallel_out = str(tmp_path / "parallel.json")
        base = ["sweep", "--task", "election", "--n", "32", "--alpha", "0.75",
                "--trials", "2", "--seed", "4"]
        assert main(base + ["--jobs", "1", "--out", serial_out]) == 0
        assert main(base + ["--jobs", "2", "--out", parallel_out]) == 0
        out = capsys.readouterr().out
        assert "election sweep" in out
        with open(serial_out) as handle:
            serial = json_module.load(handle)
        with open(parallel_out) as handle:
            parallel = json_module.load(handle)
        assert serial["points"] == parallel["points"]

    def test_fuzz_command_with_jobs(self, capsys):
        code = main(["fuzz", "--seeds", "2", "--protocol", "election",
                     "--n", "24", "--jobs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 failure(s)" in out


class TestObservability:
    """Provenance manifests, progress, and the report campaign mode."""

    def test_sweep_always_writes_manifest(self, tmp_path, capsys):
        import json as json_module

        out = str(tmp_path / "sweep.json")
        code = main(
            ["sweep", "--task", "election", "--n", "24", "--alpha", "0.75",
             "--trials", "1", "--out", out]
        )
        capsys.readouterr()
        assert code == 0
        manifest_path = tmp_path / "sweep.json.manifest.json"
        assert manifest_path.exists()
        with open(manifest_path) as handle:
            manifest = json_module.load(handle)
        assert manifest["command"] == "sweep"
        assert manifest["config"]["trials"] == 1

    def test_sweep_manifest_path_override(self, tmp_path, capsys):
        manifest = str(tmp_path / "custom.json")
        code = main(
            ["sweep", "--task", "election", "--n", "24", "--trials", "1",
             "--manifest", manifest]
        )
        capsys.readouterr()
        assert code == 0
        assert (tmp_path / "custom.json").exists()

    def test_fuzz_writes_manifest_and_journal(self, tmp_path, capsys):
        journal = str(tmp_path / "fuzz.jsonl")
        code = main(
            ["fuzz", "--seeds", "2", "--protocol", "election", "--n", "24",
             "--journal", journal]
        )
        capsys.readouterr()
        assert code == 0
        assert (tmp_path / "fuzz.jsonl").exists()
        assert (tmp_path / "fuzz.jsonl.manifest.json").exists()

    def test_report_renders_fuzz_campaign(self, tmp_path, capsys):
        journal = str(tmp_path / "fuzz.jsonl")
        assert main(
            ["fuzz", "--seeds", "2", "--protocol", "election", "--n", "24",
             "--journal", journal]
        ) == 0
        capsys.readouterr()
        assert main(["report", journal]) == 0
        out = capsys.readouterr().out
        assert "campaign report — fuzz" in out
        assert "provenance" in out
        assert "journal" in out
        assert "merged metrics" in out
        assert "trials journalled: 2" in out

    def test_report_missing_campaign_fails(self, tmp_path, capsys):
        code = main(["report", str(tmp_path / "absent.jsonl")])
        captured = capsys.readouterr()
        assert code == 1
        assert "no campaign artifact" in captured.err

    def test_progress_heartbeat_on_stderr(self, tmp_path, capsys):
        out = str(tmp_path / "sweep.json")
        code = main(
            ["sweep", "--task", "election", "--n", "24", "--trials", "2",
             "--progress", "--out", out]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "[sweep]" in captured.err
        assert "elapsed" in captured.err


class TestWireCli:
    def test_wire_elect_defaults(self):
        args = build_parser().parse_args(["wire", "elect"])
        assert args.n == 8
        assert args.alpha == 0.75
        assert args.backend == "wire"
        assert args.suspicion_threshold == 30
        assert args.script is None

    def test_wire_parity_defaults(self):
        args = build_parser().parse_args(["wire", "parity"])
        assert args.sizes == [8, 16, 32]
        assert args.backend == "wire"
        assert sorted(args.modes) == ["fault-free", "scripted"]

    def test_wire_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["wire"])

    def test_wire_elect_loopback_command(self, capsys):
        code = main(["wire", "elect", "--n", "8", "--backend", "loopback"])
        out = capsys.readouterr().out
        assert code == 0
        assert "wire election" in out
        assert "loopback" in out

    def test_wire_parity_loopback_command(self, capsys):
        code = main(
            ["wire", "parity", "--protocols", "agreement", "--sizes", "8",
             "--backend", "loopback"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "parity: 2/2 cells match" in out

    def test_wire_flood_with_script_file(self, tmp_path, capsys):
        import json as _json

        from repro.net import WireSpec, default_script

        spec = WireSpec(protocol="flooding", n=8)
        script_path = tmp_path / "script.json"
        script_path.write_text(_json.dumps(default_script(spec).to_dict()))
        code = main(
            ["wire", "flood", "--n", "8", "--script", str(script_path),
             "--backend", "loopback"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "wire flooding" in out
