"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "E5"])
        assert args.experiment == "E5"
        assert not args.quick

    def test_elect_defaults(self):
        args = build_parser().parse_args(["elect"])
        assert args.n == 512
        assert args.alpha == 0.5


class TestCommands:
    def test_params_command(self, capsys):
        assert main(["params", "--n", "512", "--alpha", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "candidate probability" in out
        assert "referees per candidate" in out

    def test_elect_command(self, capsys):
        code = main(
            ["elect", "--n", "96", "--alpha", "0.5", "--seed", "3",
             "--adversary", "staggered"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "leader election" in out

    def test_agree_command(self, capsys):
        code = main(
            ["agree", "--n", "96", "--alpha", "0.5", "--seed", "3",
             "--inputs", "single0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "agreement" in out

    def test_run_command_quick(self, capsys):
        assert main(["run", "E5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E5" in out
        assert "PASS" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "E99"])
