"""First-class Byzantine/omission fault tests (repro.faults.byzantine):
plan validation and round-trips, factory wiring, deterministic omission,
budget charging, and the measured attacker damage."""

import random

import pytest

from repro.core.runner import agree, elect_leader
from repro.errors import ConfigurationError
from repro.faults.adversary import Adversary, RoundView
from repro.faults.byzantine import (
    AGREEMENT_MODES,
    BYZANTINE_MODES,
    ELECTION_MODES,
    ByzantineAdversary,
    ByzantinePlan,
    SelectiveOmission,
    plan_factory,
)
from repro.sim import Message, Network, Protocol


class TestByzantinePlan:
    def test_mode_constants_are_consistent(self):
        assert set(ELECTION_MODES) <= set(BYZANTINE_MODES)
        assert set(AGREEMENT_MODES) <= set(BYZANTINE_MODES)
        assert "omission" in ELECTION_MODES
        assert "omission" in AGREEMENT_MODES

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="sleeper"):
            ByzantinePlan(modes={3: "sleeper"})

    def test_rejects_bad_omission_fraction(self):
        with pytest.raises(ConfigurationError, match="omission_fraction"):
            ByzantinePlan(omission_fraction=1.5)

    def test_nodes_and_len(self):
        plan = ByzantinePlan(modes={2: "omission", 5: "zero_forger"})
        assert plan.nodes == {2, 5}
        assert len(plan) == 2

    def test_round_trip(self):
        plan = ByzantinePlan(
            modes={1: "rank_forger", 4: "omission"},
            omission_fraction=0.6,
            salt=99,
        )
        restored = ByzantinePlan.from_dict(plan.to_dict())
        assert restored == plan

    def test_structural_edits(self):
        plan = ByzantinePlan(modes={1: "equivocator", 2: "omission"}, salt=7)
        honest = plan.without_node(1)
        assert honest.modes == {2: "omission"}
        assert honest.salt == 7
        downgraded = plan.with_mode(1, "omission")
        assert downgraded.modes[1] == "omission"
        assert downgraded.modes[2] == "omission"
        # Edits never mutate the original (plans are frozen).
        assert plan.modes[1] == "equivocator"


class _Sender(Protocol):
    """Every node sends one tagged message to every port each round."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.received = []

    def on_round(self, ctx, inbox):
        self.received.extend(d.sender for d in inbox)
        if ctx.round <= 3:
            for dst in ctx.all_ports():
                ctx.send(dst, Message("T", (ctx.round,)))
        else:
            ctx.idle()


class TestPlanFactory:
    def test_unmapped_node_stays_honest(self):
        factory = plan_factory(ByzantinePlan(), _Sender)
        protocol = factory(3)
        assert isinstance(protocol, _Sender)
        assert protocol.node_id == 3

    def test_omission_wraps_honest_instance(self):
        plan = ByzantinePlan(modes={0: "omission"}, omission_fraction=0.5)
        factory = plan_factory(plan, _Sender)
        wrapped = factory(0)
        assert isinstance(wrapped, SelectiveOmission)
        assert isinstance(wrapped.inner, _Sender)
        # Attribute reads fall through to the inner protocol.
        assert wrapped.node_id == 0

    def test_unknown_mode_fails_loudly(self):
        plan = ByzantinePlan(modes={2: "rank_forger"})
        factory = plan_factory(plan, _Sender)  # no attacker factories
        with pytest.raises(ConfigurationError, match="node 2"):
            factory(2)

    def test_attacker_factory_used(self):
        class FakeAttacker(Protocol):
            def __init__(self, u):
                self.node_id = u

        plan = ByzantinePlan(modes={1: "zero_forger"})
        factory = plan_factory(
            plan, _Sender, {"zero_forger": FakeAttacker}
        )
        assert isinstance(factory(1), FakeAttacker)
        assert isinstance(factory(0), _Sender)


class TestSelectiveOmission:
    def _run(self, plan):
        factory = plan_factory(plan, _Sender)
        network = Network(4, factory, seed=11)
        return network.run(6)

    def test_full_omission_silences_the_node(self):
        result = self._run(
            ByzantinePlan(modes={0: "omission"}, omission_fraction=1.0)
        )
        for u in (1, 2, 3):
            assert 0 not in result.protocol(u).received
        # The omitted node still hears everyone else.
        assert set(result.protocol(0).received) == {1, 2, 3}

    def test_zero_omission_is_honest(self):
        silent = self._run(
            ByzantinePlan(modes={0: "omission"}, omission_fraction=0.0)
        )
        honest = Network(4, _Sender, seed=11).run(6)
        assert (
            silent.metrics.messages_sent == honest.metrics.messages_sent
        )

    def test_partial_omission_is_deterministic(self):
        plan = ByzantinePlan(
            modes={0: "omission"}, omission_fraction=0.5, salt=21
        )
        first = self._run(plan)
        second = self._run(plan)
        assert (
            first.protocol(1).received == second.protocol(1).received
        )
        assert (
            first.metrics.messages_sent == second.metrics.messages_sent
        )
        # And the coin actually bites: fewer messages than honest.
        honest = Network(4, _Sender, seed=11).run(6)
        assert first.metrics.messages_sent < honest.metrics.messages_sent


class TestByzantineAdversary:
    def _view(self, round_=1, n=8):
        return RoundView(
            round=round_,
            n=n,
            faulty_alive=set(),
            crashed={},
            outboxes={},
            protocols={},
            budget_remaining=0,
        )

    def test_byzantine_nodes_join_faulty_set(self):
        plan = ByzantinePlan(modes={2: "omission", 5: "zero_forger"})
        adversary = ByzantineAdversary(plan)
        faulty = adversary.select_faulty(8, 4, random.Random(0))
        assert {2, 5} <= faulty

    def test_budget_overflow_rejected(self):
        plan = ByzantinePlan(modes={1: "omission", 2: "omission", 3: "omission"})
        adversary = ByzantineAdversary(plan)
        with pytest.raises(ConfigurationError, match="budget"):
            adversary.select_faulty(8, 2, random.Random(0))

    def test_crash_budget_reduced_by_byzantine_count(self):
        class CountingCrash(Adversary):
            def __init__(self):
                self.seen_budget = None

            def select_faulty(self, n, max_faulty, rng, inputs=None):
                self.seen_budget = max_faulty
                return set()

        crash = CountingCrash()
        plan = ByzantinePlan(modes={0: "omission", 1: "omission"})
        ByzantineAdversary(plan, crash).select_faulty(8, 5, random.Random(0))
        assert crash.seen_budget == 3

    def test_byzantine_nodes_never_crash(self):
        from repro.faults.adversary import CrashOrder

        class CrashEverything(Adversary):
            def plan_round(self, view, rng):
                return {u: CrashOrder.drop_all() for u in range(view.n)}

        plan = ByzantinePlan(modes={3: "omission"})
        adversary = ByzantineAdversary(plan, CrashEverything())
        orders = adversary.plan_round(self._view(), random.Random(0))
        assert 3 not in orders

    def test_name_mentions_byzantine_count(self):
        plan = ByzantinePlan(modes={0: "omission"})
        assert "byz[1]" in ByzantineAdversary(plan).name()


class TestAttackerDamage:
    """The headline measurements: one liar collapses each guarantee."""

    def test_zero_forger_breaks_agreement_validity(self):
        plan = ByzantinePlan(modes={5: "zero_forger"})
        results = [
            agree(n=48, alpha=0.5, inputs="all1", seed=seed, byzantine=plan)
            for seed in range(4)
        ]
        # Every honest input is 1, so any decided 0 is the forged value.
        assert any(not r.validity_holds for r in results)
        assert all(5 in r.faulty for r in results)

    def test_rank_forger_charged_to_budget(self):
        plan = ByzantinePlan(modes={7: "rank_forger"})
        result = elect_leader(n=48, alpha=0.5, seed=4, byzantine=plan)
        assert 7 in result.faulty
