"""Unit tests for the adversary interface (repro.faults.adversary)."""

import random

import pytest

from repro.faults.adversary import Adversary, CrashOrder, RoundView
from repro.sim.message import Envelope, Message


def _envelope(src=0, dst=1):
    return Envelope(src=src, dst=dst, message=Message("X"), round_sent=1)


class TestCrashOrder:
    def test_drop_all(self):
        order = CrashOrder.drop_all()
        assert not order.keep(_envelope())

    def test_keep_all(self):
        order = CrashOrder.keep_all()
        assert order.keep(_envelope())

    def test_keep_destinations(self):
        order = CrashOrder.keep_destinations({2, 3})
        assert order.keep(_envelope(dst=2))
        assert not order.keep(_envelope(dst=1))

    def test_keep_fraction_zero_and_one(self):
        rng = random.Random(0)
        assert not CrashOrder.keep_fraction(0.0, rng).keep(_envelope())
        assert CrashOrder.keep_fraction(1.0, rng).keep(_envelope())

    def test_keep_fraction_validates(self):
        with pytest.raises(ValueError):
            CrashOrder.keep_fraction(1.5, random.Random(0))

    def test_keep_fraction_is_random(self):
        rng = random.Random(1)
        order = CrashOrder.keep_fraction(0.5, rng)
        outcomes = {order.keep(_envelope()) for _ in range(50)}
        assert outcomes == {True, False}


class TestRoundView:
    def test_sending_faulty(self):
        view = RoundView(
            round=3,
            n=8,
            faulty_alive={1, 2, 3},
            crashed={},
            outboxes={1: [_envelope(src=1)], 3: []},
        )
        assert view.sending_faulty() == [1]

    def test_budget_remaining_defaults_to_zero(self):
        view = RoundView(round=1, n=8, faulty_alive=set(), crashed={}, outboxes={})
        assert view.budget_remaining == 0

    def test_budget_remaining_exposed_by_engine(self):
        from repro.faults.adversary import Adversary
        from repro.sim import Message, Network, Protocol

        seen = []

        class Recorder(Adversary):
            def select_faulty(self, n, max_faulty, rng, inputs=None):
                return {0, 1}

            def plan_round(self, view, rng):
                seen.append(view.budget_remaining)
                return {}

            def done(self, view):
                return False

        class Quiet(Protocol):
            def __init__(self, u):
                self.u = u

            def on_round(self, ctx, inbox):
                if self.u == 2 and ctx.round == 1:
                    ctx.send(ctx.sample_nodes(1)[0], Message("X"))
                ctx.idle()

        network = Network(8, Quiet, adversary=Recorder(), max_faulty=5)
        network.run(3)
        assert seen and all(value == 3 for value in seen)  # 5 budget - 2 used


class TestBaseAdversary:
    def test_default_is_fault_free(self):
        adversary = Adversary()
        rng = random.Random(0)
        assert adversary.select_faulty(16, 8, rng) == set()
        view = RoundView(round=1, n=16, faulty_alive=set(), crashed={}, outboxes={})
        assert adversary.plan_round(view, rng) == {}
        assert adversary.done(view)

    def test_done_waits_for_faulty(self):
        view = RoundView(round=1, n=16, faulty_alive={3}, crashed={}, outboxes={})
        assert not Adversary().done(view)

    def test_name(self):
        assert Adversary().name() == "Adversary"
