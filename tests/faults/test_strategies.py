"""Behavioural tests for the adversary strategies (repro.faults.strategies)."""

import random

import pytest

from repro.faults.adversary import RoundView
from repro.faults.strategies import (
    AdaptiveMinProposerCrash,
    EagerCrash,
    LazyCrash,
    NoFaults,
    RandomCrash,
    SplitDeliveryCrash,
    StaggeredCrash,
    named_adversary,
    standard_portfolio,
)
from repro.sim.message import Envelope, Message


def _view(round_, faulty_alive, outboxes=None):
    return RoundView(
        round=round_,
        n=64,
        faulty_alive=set(faulty_alive),
        crashed={},
        outboxes=outboxes or {},
    )


def _envelope(src, dst, fields=()):
    return Envelope(src=src, dst=dst, message=Message("M", fields), round_sent=1)


class TestNoFaults:
    def test_selects_nothing(self):
        assert NoFaults().select_faulty(64, 32, random.Random(0)) == set()

    def test_always_done(self):
        assert NoFaults().done(_view(1, set()))


class TestEagerCrash:
    def test_crashes_everything_in_round_one(self):
        adversary = EagerCrash()
        faulty = adversary.select_faulty(64, 16, random.Random(0))
        assert len(faulty) == 16
        orders = adversary.plan_round(_view(1, faulty), random.Random(0))
        assert set(orders) == faulty

    def test_silent_after_round_one(self):
        adversary = EagerCrash()
        faulty = adversary.select_faulty(64, 16, random.Random(0))
        assert adversary.plan_round(_view(2, faulty), random.Random(0)) == {}

    def test_drops_everything(self):
        adversary = EagerCrash()
        faulty = adversary.select_faulty(64, 16, random.Random(0))
        victim = next(iter(faulty))
        orders = adversary.plan_round(_view(1, faulty), random.Random(0))
        assert not orders[victim].keep(_envelope(victim, 0))


class TestLazyCrash:
    def test_never_crashes_without_round(self):
        adversary = LazyCrash()
        faulty = adversary.select_faulty(64, 8, random.Random(0))
        for round_ in (1, 5, 100):
            assert adversary.plan_round(_view(round_, faulty), random.Random(0)) == {}
        assert adversary.done(_view(1, faulty))

    def test_crashes_exactly_at_round(self):
        adversary = LazyCrash(crash_round=7)
        faulty = adversary.select_faulty(64, 8, random.Random(0))
        assert adversary.plan_round(_view(6, faulty), random.Random(0)) == {}
        orders = adversary.plan_round(_view(7, faulty), random.Random(0))
        assert set(orders) == faulty

    def test_not_done_until_after_crash_round(self):
        # Regression: done() must be False *at* the crash round, else the
        # engine fast-forwards past the crash.
        adversary = LazyCrash(crash_round=7)
        faulty = adversary.select_faulty(64, 8, random.Random(0))
        assert not adversary.done(_view(7, faulty))
        assert adversary.done(_view(8, faulty))


class TestRandomCrash:
    def test_schedule_covers_horizon(self):
        adversary = RandomCrash(horizon=10)
        faulty = adversary.select_faulty(256, 128, random.Random(0))
        rounds = set(adversary._schedule.values())
        assert rounds <= set(range(1, 11))
        assert len(rounds) > 3  # spread out

    def test_every_faulty_node_eventually_crashes(self):
        adversary = RandomCrash(horizon=5)
        faulty = adversary.select_faulty(64, 16, random.Random(1))
        crashed = set()
        alive = set(faulty)
        for round_ in range(1, 6):
            orders = adversary.plan_round(_view(round_, alive), random.Random(0))
            crashed |= set(orders)
            alive -= set(orders)
        assert crashed == faulty

    def test_validates_horizon(self):
        with pytest.raises(ValueError):
            RandomCrash(horizon=0)

    def test_validates_keep_probability(self):
        with pytest.raises(ValueError):
            RandomCrash(horizon=5, keep_probability=2.0)

    def test_not_done_at_horizon(self):
        adversary = RandomCrash(horizon=5)
        faulty = adversary.select_faulty(64, 8, random.Random(0))
        assert not adversary.done(_view(5, faulty))
        assert adversary.done(_view(6, faulty))


class TestStaggeredCrash:
    def test_one_victim_per_period(self):
        adversary = StaggeredCrash(period=4)
        faulty = adversary.select_faulty(64, 8, random.Random(0))
        victims = []
        alive = set(faulty)
        for round_ in range(1, 40):
            orders = adversary.plan_round(_view(round_, alive), random.Random(0))
            assert len(orders) <= 1
            victims.extend(orders)
            alive -= set(orders)
        assert set(victims) == faulty

    def test_crash_rounds_are_periodic(self):
        adversary = StaggeredCrash(period=3, start_round=2)
        faulty = adversary.select_faulty(64, 4, random.Random(0))
        alive = set(faulty)
        crash_rounds = []
        for round_ in range(1, 20):
            orders = adversary.plan_round(_view(round_, alive), random.Random(0))
            if orders:
                crash_rounds.append(round_)
                alive -= set(orders)
        assert crash_rounds == [2, 5, 8, 11]

    def test_validates_period(self):
        with pytest.raises(ValueError):
            StaggeredCrash(period=0)


class TestSplitDeliveryCrash:
    def test_keeps_smaller_half_of_destinations(self):
        adversary = SplitDeliveryCrash(horizon=1)
        faulty = adversary.select_faulty(64, 4, random.Random(3))
        victim = next(iter(faulty))
        adversary._schedule[victim] = 1
        outbox = [_envelope(victim, dst) for dst in (10, 20, 30, 40)]
        orders = adversary.plan_round(
            _view(1, {victim}, outboxes={victim: outbox}), random.Random(0)
        )
        order = orders[victim]
        kept = [e.dst for e in outbox if order.keep(e)]
        assert kept == [10, 20]


class TestAdaptiveMinProposerCrash:
    def test_targets_smallest_field_sender(self):
        adversary = AdaptiveMinProposerCrash()
        adversary.select_faulty(64, 8, random.Random(0))
        outboxes = {
            5: [_envelope(5, 1, (100,))],
            6: [_envelope(6, 2, (7,))],
        }
        orders = adversary.plan_round(
            _view(2, {5, 6}, outboxes=outboxes), random.Random(0)
        )
        assert set(orders) == {6}

    def test_ignores_silent_rounds(self):
        adversary = AdaptiveMinProposerCrash()
        adversary.select_faulty(64, 8, random.Random(0))
        assert adversary.plan_round(_view(2, {5, 6}), random.Random(0)) == {}

    def test_respects_period(self):
        adversary = AdaptiveMinProposerCrash(period=3)
        adversary.select_faulty(64, 8, random.Random(0))
        outboxes = {5: [_envelope(5, 1, (100,))]}
        assert (
            adversary.plan_round(_view(2, {5}, outboxes=outboxes), random.Random(0))
            == {}
        )
        assert adversary.plan_round(
            _view(3, {5}, outboxes=outboxes), random.Random(0)
        )


class TestRegistry:
    def test_named_adversary_roundtrip(self):
        for name in ("none", "eager", "lazy", "random", "staggered", "split", "adaptive"):
            adversary = named_adversary(name, horizon=10)
            assert adversary.name()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            named_adversary("bogus", horizon=10)

    def test_portfolio_is_diverse(self):
        portfolio = standard_portfolio(horizon=20)
        names = {a.name() for a in portfolio}
        assert len(names) == len(portfolio) >= 6
