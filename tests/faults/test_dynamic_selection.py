"""Tests for adaptive-selection adversaries (CandidateHunter + engine
support for corrupting nodes mid-run)."""

import pytest

from repro.core import elect_leader
from repro.errors import SimulationError
from repro.faults import CandidateHunter
from repro.faults.adversary import Adversary, CrashOrder
from repro.rng import seed_sequence
from repro.sim import Message, Network, Protocol


class Speaker(Protocol):
    """Every node speaks in round 1."""

    def __init__(self, node_id):
        self.node_id = node_id

    def on_round(self, ctx, inbox):
        if ctx.round == 1:
            ctx.send(ctx.sample_nodes(1)[0], Message("HI"))
        ctx.idle()


class TestEngineDynamicSelection:
    def test_budget_enforced_for_dynamic_adversary(self):
        class GreedyHunter(Adversary):
            dynamic_selection = True

            def plan_round(self, view, rng):
                if view.round != 1:
                    return {}
                return {
                    u: CrashOrder.drop_all() for u in sorted(view.outboxes)
                }

        network = Network(16, Speaker, adversary=GreedyHunter(), max_faulty=4)
        with pytest.raises(SimulationError):
            network.run(3)

    def test_static_adversary_still_rejected_off_set(self):
        class Cheater(Adversary):
            def plan_round(self, view, rng):
                if view.round == 1:
                    return {0: CrashOrder.drop_all()}
                return {}

        network = Network(16, Speaker, adversary=Cheater(), max_faulty=4)
        with pytest.raises(SimulationError):
            network.run(3)

    def test_corrupted_nodes_join_faulty_set(self):
        network = Network(16, Speaker, adversary=CandidateHunter(), max_faulty=4)
        result = network.run(4)
        assert len(result.faulty) == 4
        assert set(result.crashed) == result.faulty


class TestCandidateHunter:
    def test_kills_election_when_budget_covers_committee(self, fast_params):
        params = fast_params(96)  # committee ~27 < budget 48
        failures = sum(
            not elect_leader(
                n=96, alpha=0.5, seed=seed, adversary="hunter", params=params
            ).success
            for seed in seed_sequence(1, 6)
        )
        assert failures >= 5

    def test_harmless_with_tiny_budget(self, fast_params):
        params = fast_params(96)
        ok = sum(
            elect_leader(
                n=96, alpha=0.5, seed=seed, adversary="hunter",
                params=params, faulty_count=2,
            ).success
            for seed in seed_sequence(2, 6)
        )
        assert ok >= 5

    def test_validates_rounds(self):
        with pytest.raises(ValueError):
            CandidateHunter(rounds=0)

    def test_name(self):
        assert CandidateHunter(rounds=2).name() == "candidate-hunter@2"
