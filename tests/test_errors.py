"""Sanity tests for the exception hierarchy (repro.errors)."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "ConfigurationError",
            "CongestViolation",
            "KnowledgeViolation",
            "SimulationError",
            "ProtocolViolation",
            "BudgetExceeded",
            "TrialFailed",
            "TrialTimeout",
            "OracleViolation",
        ):
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError)

    def test_trial_timeout_is_trial_failure(self):
        # Callers handling TrialFailed also see timeouts.
        assert issubclass(errors.TrialTimeout, errors.TrialFailed)
        assert errors.TrialTimeout("slow", attempts=3).attempts == 3

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.CongestViolation("too big")

    def test_distinct_types(self):
        with pytest.raises(errors.KnowledgeViolation):
            try:
                raise errors.KnowledgeViolation("kt0")
            except errors.CongestViolation:  # pragma: no cover
                pytest.fail("wrong class caught")
