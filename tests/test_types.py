"""Unit tests for shared types (repro.types)."""

import pytest

from repro.types import Decision, Knowledge, NodeState


class TestDecision:
    def test_of_bits(self):
        assert Decision.of(0) is Decision.ZERO
        assert Decision.of(1) is Decision.ONE

    def test_of_rejects_non_bits(self):
        with pytest.raises(ValueError):
            Decision.of(2)

    def test_bit_roundtrip(self):
        assert Decision.ZERO.bit == 0
        assert Decision.ONE.bit == 1

    def test_undecided_has_no_bit(self):
        with pytest.raises(ValueError):
            Decision.UNDECIDED.bit


class TestNodeState:
    def test_three_states(self):
        assert {s.name for s in NodeState} == {
            "UNDECIDED",
            "ELECTED",
            "NON_ELECTED",
        }


class TestKnowledge:
    def test_models(self):
        assert Knowledge.KT0.value == "KT0"
        assert Knowledge.KT1.value == "KT1"
