"""Property: a Δ=0 delivery schedule is byte-identical to the synchronous
engine for every protocol and every crash schedule.

The engine bypasses the schedule entirely when ``is_synchronous`` holds,
so attaching an explicit ``UniformDelay(0)`` must change *nothing
observable* — message counts, round counts, decisions, elected leaders,
crash realisations.  This is the invariant the elect512 canary guards for
one configuration; here it is checked across grammar-sampled crash
schedules for all three fuzzable protocols."""

import random

from repro.baselines.ben_or import ben_or_consensus, ben_or_horizon
from repro.chaos.grammar import sample_script
from repro.core.runner import agree, elect_leader, make_inputs
from repro.params import Params
from repro.sim.delivery import SYNCHRONOUS, UniformDelay

N = 32
ALPHA = 0.5
SEEDS = (0, 1, 2)


def _script(seed, horizon=15):
    params = Params(n=N, alpha=ALPHA)
    return sample_script(
        random.Random(seed),
        n=N,
        max_faulty=params.max_faulty,
        horizon=horizon,
        label=f"parity@{seed}",
    )


def _zero_delay(seed):
    schedule = UniformDelay(max_delay=0, salt=seed)
    assert schedule.is_synchronous
    return schedule


class TestElectionParity:
    def test_grammar_schedules_identical_under_zero_delay(self):
        for seed in SEEDS:
            script = _script(seed)
            plain = elect_leader(
                n=N, alpha=ALPHA, seed=seed, adversary=script
            )
            delayed = elect_leader(
                n=N,
                alpha=ALPHA,
                seed=seed,
                adversary=script,
                delivery=_zero_delay(seed),
            )
            assert plain.metrics.messages_sent == delayed.metrics.messages_sent
            assert plain.metrics.rounds == delayed.metrics.rounds
            assert plain.leader_node == delayed.leader_node
            assert plain.faulty == delayed.faulty
            assert plain.crashed == delayed.crashed
            assert delayed.max_delay == 0


class TestAgreementParity:
    def test_grammar_schedules_identical_under_zero_delay(self):
        for seed in SEEDS:
            script = _script(seed)
            plain = agree(
                n=N, alpha=ALPHA, inputs="mixed", seed=seed, adversary=script
            )
            delayed = agree(
                n=N,
                alpha=ALPHA,
                inputs="mixed",
                seed=seed,
                adversary=script,
                delivery=_zero_delay(seed),
            )
            assert plain.metrics.messages_sent == delayed.metrics.messages_sent
            assert plain.metrics.rounds == delayed.metrics.rounds
            assert plain.decisions == delayed.decisions
            assert plain.crashed == delayed.crashed


class TestBenOrParity:
    def test_grammar_schedules_identical_under_zero_delay(self):
        for seed in SEEDS:
            script = _script(seed, horizon=ben_or_horizon())
            inputs = make_inputs(N, "mixed", seed)
            plain = ben_or_consensus(
                n=N,
                inputs=inputs,
                seed=seed,
                adversary=script,
                faulty_count=(N - 1) // 2,
            )
            delayed = ben_or_consensus(
                n=N,
                inputs=inputs,
                seed=seed,
                adversary=script,
                faulty_count=(N - 1) // 2,
                delivery=_zero_delay(seed),
            )
            assert plain.messages == delayed.messages
            assert plain.rounds == delayed.rounds
            assert plain.decisions == delayed.decisions
            assert plain.crashed == delayed.crashed
            assert plain.success == delayed.success


class TestLatencyUnderZeroDelay:
    def test_all_latencies_are_one(self):
        outcome = ben_or_consensus(
            n=16,
            inputs=make_inputs(16, "mixed", 3),
            seed=3,
            delivery=_zero_delay(3),
        )
        assert set(outcome.metrics.delivery_latency) <= {1}
        assert outcome.metrics.max_delivery_latency == 1

    def test_synchronous_sentinel_equals_zero_uniform(self):
        # SYNCHRONOUS and UniformDelay(0) are interchangeable by design.
        inputs = make_inputs(16, "all1", 5)
        a = ben_or_consensus(n=16, inputs=inputs, seed=5, delivery=SYNCHRONOUS)
        b = ben_or_consensus(
            n=16, inputs=inputs, seed=5, delivery=UniformDelay(0, salt=77)
        )
        assert a.messages == b.messages
        assert a.rounds == b.rounds
        assert a.decisions == b.decisions
