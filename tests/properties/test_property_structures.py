"""Property-based tests of the core data structures.

Messages, traces, communication graphs, influence clouds, and the table
renderer must behave on *arbitrary* well-typed inputs, not just the ones
the protocols happen to produce.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.tables import format_table
from repro.lowerbound.clouds import find_initiators, influence_clouds
from repro.lowerbound.comm_graph import CommunicationGraph
from repro.sim.message import Message, payload_bits
from repro.sim.trace import Trace, TraceEvent

fields = st.tuples() | st.tuples(st.integers(0, 2**40) | st.none()) | st.tuples(
    st.integers(0, 2**40) | st.none(), st.integers(0, 2**40) | st.none()
)


class TestMessageProperties:
    @given(kind=st.text(min_size=1, max_size=8), fs=fields)
    def test_bits_positive_and_stable(self, kind, fs):
        message = Message(kind, fs)
        assert message.bits >= 8
        assert message.bits == payload_bits(message)

    @given(value=st.integers(min_value=0, max_value=2**60))
    def test_bits_monotone_in_value(self, value):
        small = Message("X", (value,)).bits
        large = Message("X", (value * 2 + 2,)).bits
        assert large >= small

    @given(fs=fields)
    def test_equal_messages_hash_equal(self, fs):
        assert hash(Message("K", fs)) == hash(Message("K", fs))


edges = st.lists(
    st.tuples(
        st.integers(0, 15), st.integers(0, 15), st.integers(1, 20)
    ).filter(lambda e: e[0] != e[1]),
    max_size=30,
)


def _trace_from_edges(edge_list):
    trace = Trace()
    for src, dst, round_ in sorted(edge_list, key=lambda e: e[2]):
        trace.record(
            TraceEvent(round=round_, kind="send", src=src, dst=dst, message_kind="X")
        )
        trace.record(
            TraceEvent(round=round_, kind="deliver", src=src, dst=dst, message_kind="X")
        )
    return trace


class TestCommunicationGraphProperties:
    @settings(max_examples=60)
    @given(edge_list=edges)
    def test_components_partition_communicating_nodes(self, edge_list):
        graph = CommunicationGraph(n=16, edges=sorted(edge_list, key=lambda e: e[2]))
        components = graph.undirected_components()
        covered = set()
        for component in components:
            assert not (component & covered), "components must be disjoint"
            covered |= component
        assert covered == graph.nodes_communicating

    @settings(max_examples=60)
    @given(edge_list=edges)
    def test_first_contact_is_antisymmetric(self, edge_list):
        graph = CommunicationGraph(n=16, edges=sorted(edge_list, key=lambda e: e[2]))
        fc = graph.first_contact_graph()
        directed = {(src, dst) for src, dst, _ in fc.edges}
        assert not any((dst, src) in directed for src, dst in directed)

    @settings(max_examples=60)
    @given(edge_list=edges)
    def test_first_contact_is_subgraph(self, edge_list):
        graph = CommunicationGraph(n=16, edges=sorted(edge_list, key=lambda e: e[2]))
        original = {(src, dst) for src, dst, _ in graph.edges}
        for src, dst, _ in graph.first_contact_graph().edges:
            assert (src, dst) in original


class TestInfluenceCloudProperties:
    @settings(max_examples=60)
    @given(edge_list=edges)
    def test_clouds_contain_their_initiators(self, edge_list):
        trace = _trace_from_edges(edge_list)
        decomposition = influence_clouds(trace, n=16)
        for initiator, cloud in decomposition.clouds.items():
            assert initiator in cloud

    @settings(max_examples=60)
    @given(edge_list=edges)
    def test_initiators_sent_something(self, edge_list):
        trace = _trace_from_edges(edge_list)
        senders = {event.src for event in trace.sends()}
        assert set(find_initiators(trace)) <= senders

    @settings(max_examples=60)
    @given(edge_list=edges)
    def test_union_of_clouds_covers_all_delivered_receivers_of_initiators(
        self, edge_list
    ):
        trace = _trace_from_edges(edge_list)
        decomposition = influence_clouds(trace, n=16)
        union = set()
        for cloud in decomposition.clouds.values():
            union |= cloud
        assert set(decomposition.initiators) <= union


table_rows = st.lists(
    st.dictionaries(
        keys=st.sampled_from(["a", "b", "c"]),
        values=st.integers(-10**6, 10**6)
        | st.floats(allow_nan=False, allow_infinity=False, width=32)
        | st.booleans()
        | st.text(max_size=12),
        min_size=1,
        max_size=3,
    ),
    min_size=1,
    max_size=6,
)


class TestTableProperties:
    @settings(max_examples=60)
    @given(rows=table_rows)
    def test_renders_without_crashing_and_aligns(self, rows):
        text = format_table(rows, columns=["a", "b", "c"])
        lines = text.splitlines()
        body = lines[2:]
        assert len(body) == len(rows)
        # All rendered rows share the header's width or less (ljust pads).
        assert all(len(line) <= len(lines[0]) + 2 for line in body)
