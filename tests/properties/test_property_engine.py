"""Property-based tests of engine invariants.

Random 'scatter' protocols send random fan-outs under random crash
adversaries; whatever happens, the engine's conservation laws must hold:

* exact message conservation: every wire message is delivered, dropped,
  or expired (sent to a dead receiver) — no silent losses, on both the
  traced and the no-trace fast path;
* the CONGEST invariant: per round, at most one message per ordered edge;
* seeds fully determine the run.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.strategies import EagerCrash, RandomCrash, StaggeredCrash
from repro.sim import Message, Network, Protocol, validate_run


class Scatter(Protocol):
    """Sends a random fan-out for the first few rounds, echoes afterwards."""

    def __init__(self, node_id, fanout, chatty_rounds):
        self.node_id = node_id
        self.fanout = fanout
        self.chatty_rounds = chatty_rounds

    def on_round(self, ctx, inbox):
        for delivery in inbox:
            if delivery.kind == "PING":
                ctx.send(delivery.sender, Message("PONG"))
        if ctx.round <= self.chatty_rounds and ctx.rng.random() < 0.5:
            for dst in ctx.sample_nodes(self.fanout):
                ctx.send(dst, Message("PING"))
        else:
            ctx.idle()


def _run(seed, n, fanout, chatty_rounds, adversary, collect_trace=True):
    network = Network(
        n,
        lambda u: Scatter(u, fanout, chatty_rounds),
        seed=seed,
        adversary=adversary,
        max_faulty=n // 2,
        collect_trace=collect_trace,
    )
    return network.run(chatty_rounds + 10)


adversaries = st.sampled_from(
    [
        lambda: EagerCrash(),
        lambda: RandomCrash(horizon=6),
        lambda: StaggeredCrash(period=2),
    ]
)


class TestConservation:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=4, max_value=32),
        fanout=st.integers(min_value=1, max_value=3),
        make_adversary=adversaries,
    )
    def test_every_sent_message_is_accounted(self, seed, n, fanout, make_adversary):
        result = _run(seed, n, fanout, 4, make_adversary())
        metrics = result.metrics
        # Exact conservation: no silent losses.
        assert metrics.messages_sent == (
            metrics.messages_delivered
            + metrics.messages_dropped
            + metrics.messages_expired
        )
        # Every send lands in exactly one round bucket.
        assert sum(metrics.per_round_messages) == metrics.messages_sent
        # Expiry requires crashes.
        if not result.crashed:
            assert metrics.messages_expired == 0
        # The trace-level validator agrees event-by-event.
        assert validate_run(result) == []

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=4, max_value=32),
        fanout=st.integers(min_value=1, max_value=3),
        make_adversary=adversaries,
    )
    def test_conservation_holds_on_the_no_trace_fast_path(
        self, seed, n, fanout, make_adversary
    ):
        """The fast path (no trace, batched sends) must reach the same
        exact identity — and the same numbers — as the traced path."""
        traced = _run(seed, n, fanout, 4, make_adversary())
        fast = _run(seed, n, fanout, 4, make_adversary(), collect_trace=False)
        assert fast.trace is None
        metrics = fast.metrics
        assert metrics.messages_sent == (
            metrics.messages_delivered
            + metrics.messages_dropped
            + metrics.messages_expired
        )
        assert sum(metrics.per_round_messages) == metrics.messages_sent
        assert metrics.summary() == traced.metrics.summary()

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=4, max_value=32),
        fanout=st.integers(min_value=1, max_value=3),
        make_adversary=adversaries,
    )
    def test_congest_one_message_per_edge_per_round(
        self, seed, n, fanout, make_adversary
    ):
        result = _run(seed, n, fanout, 4, make_adversary())
        seen = set()
        for event in result.trace.sends():
            key = (event.round, event.src, event.dst)
            assert key not in seen, "two messages on one edge in one round"
            seen.add(key)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=4, max_value=24),
    )
    def test_seed_determinism(self, seed, n):
        a = _run(seed, n, 2, 3, RandomCrash(horizon=5))
        b = _run(seed, n, 2, 3, RandomCrash(horizon=5))
        assert a.metrics.summary() == b.metrics.summary()
        assert a.crashed == b.crashed
        assert a.faulty == b.faulty

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=4, max_value=24),
    )
    def test_crashed_nodes_send_nothing_after_crash(self, seed, n):
        result = _run(seed, n, 2, 3, RandomCrash(horizon=5))
        for event in result.trace.sends():
            crash_round = result.crashed.get(event.src)
            if crash_round is not None:
                assert event.round <= crash_round
