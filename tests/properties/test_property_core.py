"""Property-based tests of the paper protocols' safety invariants.

These hold on *every* execution (not just w.h.p.):

* agreement validity: a decided bit is always some node's input
  (Definition 2, condition 2 — structural in the protocol);
* at most one *alive* node ends ELECTED whenever beliefs agree;
* the adversary never crashes non-faulty nodes, and crash counts stay
  within the fault budget;
* budget-capped runs never exceed their cap.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import agree, elect_leader
from repro.params import Params

adversary_names = st.sampled_from(
    ["none", "eager", "lazy", "random", "staggered", "split", "adaptive"]
)


def _params(n):
    return Params(n=n, alpha=0.5, candidate_factor=2.0, referee_factor=1.0,
                  iteration_factor=3.0)


class TestAgreementSafety:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        adversary=adversary_names,
        pattern=st.sampled_from(["all0", "all1", "mixed", "single0", "single1"]),
    )
    def test_validity_always_holds(self, seed, adversary, pattern):
        result = agree(
            n=64, alpha=0.5, inputs=pattern, seed=seed, adversary=adversary,
            params=_params(64),
        )
        assert result.validity_holds

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        adversary=adversary_names,
    )
    def test_faulty_budget_respected(self, seed, adversary):
        result = agree(
            n=64, alpha=0.5, inputs="mixed", seed=seed, adversary=adversary,
            params=_params(64),
        )
        assert len(result.faulty) <= Params(n=64, alpha=0.5).max_faulty
        assert set(result.crashed) <= result.faulty

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        budget=st.integers(min_value=0, max_value=500),
    )
    def test_budget_never_exceeded(self, seed, budget):
        result = agree(
            n=64, alpha=0.5, inputs="mixed", seed=seed, adversary="random",
            params=_params(64), message_budget=budget,
        )
        assert result.messages <= budget


class TestElectionSafety:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        adversary=adversary_names,
    )
    def test_crashed_never_in_alive_elected(self, seed, adversary):
        result = elect_leader(
            n=64, alpha=0.5, seed=seed, adversary=adversary, params=_params(64)
        )
        assert not (set(result.elected_alive) & set(result.crashed))
        assert not (set(result.candidates_alive) & set(result.crashed))

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        adversary=adversary_names,
    )
    def test_success_implies_unique_winner(self, seed, adversary):
        result = elect_leader(
            n=64, alpha=0.5, seed=seed, adversary=adversary, params=_params(64)
        )
        if result.strict_success:
            assert len(result.elected_alive) == 1
        if result.success and not result.strict_success:
            assert len(result.elected_crashed) == 1
            assert not result.elected_alive

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_beliefs_only_from_drawn_ranks(self, seed):
        result = elect_leader(
            n=64, alpha=0.5, seed=seed, adversary="random", params=_params(64)
        )
        all_ranks = set(result.ranks.values())
        for belief in result.beliefs.values():
            if belief is not None:
                assert belief in all_ranks
