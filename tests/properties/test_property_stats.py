"""Property-based tests for the statistics and fitting helpers."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.complexity import fit_power_law
from repro.analysis.stats import wilson_interval
from repro.rng import derive_seed


class TestWilsonProperties:
    @given(
        trials=st.integers(min_value=1, max_value=10_000),
        data=st.data(),
    )
    def test_interval_always_contains_estimate(self, trials, data):
        successes = data.draw(st.integers(min_value=0, max_value=trials))
        lo, hi = wilson_interval(successes, trials)
        assert 0.0 <= lo <= successes / trials <= hi <= 1.0

    @given(
        successes=st.integers(min_value=0, max_value=100),
    )
    def test_more_trials_never_widen(self, successes):
        lo1, hi1 = wilson_interval(successes, 100)
        lo2, hi2 = wilson_interval(successes * 10, 1000)
        assert (hi2 - lo2) <= (hi1 - lo1) + 1e-12


class TestPowerLawProperties:
    @settings(max_examples=50)
    @given(
        exponent=st.floats(min_value=-2.0, max_value=3.0),
        prefactor=st.floats(min_value=0.01, max_value=1000.0),
    )
    def test_fit_recovers_synthetic_law(self, exponent, prefactor):
        xs = [4.0, 16.0, 64.0, 256.0]
        ys = [prefactor * x**exponent for x in xs]
        fit = fit_power_law(xs, ys)
        assert math.isclose(fit.exponent, exponent, abs_tol=1e-6)
        assert math.isclose(fit.prefactor, prefactor, rel_tol=1e-5)

    @settings(max_examples=30)
    @given(scale=st.floats(min_value=0.5, max_value=100.0))
    def test_scaling_ys_only_changes_prefactor(self, scale):
        xs = [2.0, 8.0, 32.0]
        ys = [x**1.5 for x in xs]
        base = fit_power_law(xs, ys)
        scaled = fit_power_law(xs, [scale * y for y in ys])
        assert math.isclose(base.exponent, scaled.exponent, abs_tol=1e-9)
        assert math.isclose(scaled.prefactor, scale * base.prefactor, rel_tol=1e-6)


class TestSeedDerivationProperties:
    @settings(max_examples=100)
    @given(
        seed=st.integers(min_value=0, max_value=2**63),
        labels=st.lists(
            st.one_of(st.integers(), st.text(max_size=10)), max_size=4
        ),
    )
    def test_stable_and_in_range(self, seed, labels):
        a = derive_seed(seed, *labels)
        b = derive_seed(seed, *labels)
        assert a == b
        assert 0 <= a < 2**64

    @settings(max_examples=100)
    @given(seed=st.integers(min_value=0, max_value=2**32))
    def test_label_changes_seed(self, seed):
        assert derive_seed(seed, "a") != derive_seed(seed, "b")
