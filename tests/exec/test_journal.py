"""Tests for the JSONL checkpoint journal (repro.exec.journal)."""

from repro.exec import Journal, open_journal


class TestJournal:
    def test_append_load_round_trip(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append({"key": "a", "value": 1})
        journal.append({"key": "b", "value": [1, 2]})
        assert journal.load() == [
            {"key": "a", "value": 1},
            {"key": "b", "value": [1, 2]},
        ]
        assert journal.corrupt_lines == 0

    def test_half_written_trailing_line_is_skipped(self, tmp_path):
        """The on-disk signature of a process killed mid-append."""
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append({"key": "a"})
        journal.append({"key": "b"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "c", "val')  # no newline, no closing brace
        assert [r["key"] for r in journal.load()] == ["a", "b"]
        assert journal.corrupt_lines == 1
        # The journal stays appendable after the torn write.
        journal.append({"key": "d"})
        keys = [r["key"] for r in journal.load()]
        assert "d" in keys and "c" not in " ".join(keys)

    def test_non_dict_lines_count_as_corrupt(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"key": "a"}\n[1, 2, 3]\n\n')
        journal = Journal(path)
        assert [r["key"] for r in journal.load()] == ["a"]
        assert journal.corrupt_lines == 1

    def test_missing_file_loads_empty(self, tmp_path):
        journal = Journal(tmp_path / "absent.jsonl")
        assert not journal.exists()
        assert journal.load() == []

    def test_clear_removes_file(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append({"key": "a"})
        assert journal.exists()
        journal.clear()
        assert not journal.exists()
        journal.clear()  # idempotent


class TestOpenJournal:
    def test_none_path_means_no_journal(self):
        assert open_journal(None, resume=True) is None

    def test_fresh_run_truncates_stale_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        Journal(path).append({"key": "stale"})
        journal = open_journal(path, resume=False)
        assert not journal.exists()

    def test_resume_keeps_existing_records(self, tmp_path):
        path = tmp_path / "j.jsonl"
        Journal(path).append({"key": "kept"})
        journal = open_journal(path, resume=True)
        assert [r["key"] for r in journal.load()] == ["kept"]
