"""Tests for the resilient trial executor (repro.exec.executor)."""

import pytest

from repro.errors import TrialFailed
from repro.exec import (
    FAILED,
    OK,
    QUARANTINED,
    RESUMED,
    TIMEOUT,
    Journal,
    Quarantine,
    ResilientExecutor,
    RetryPolicy,
    default_serialize,
    timeouts_supported,
)
from repro.rng import derive_seed


class FlakyTask:
    """Fails the first ``failures`` calls, then succeeds; records seeds."""

    def __init__(self, failures=0):
        self.failures = failures
        self.calls = 0
        self.seeds = []

    def __call__(self, seed, **kwargs):
        self.calls += 1
        self.seeds.append(seed)
        if self.calls <= self.failures:
            raise TrialFailed(f"flake #{self.calls}")
        return {"seed": seed, **kwargs}


class TestRunTrial:
    def test_success_first_attempt(self):
        task = FlakyTask()
        outcome = ResilientExecutor().run_trial(task, key="k", seed=7, n=4)
        assert outcome.ok and outcome.status == OK
        assert outcome.attempts == 1
        assert outcome.value == {"seed": 7, "n": 4}
        assert outcome.error is None

    def test_retry_uses_derived_seeds_and_backoff_in_order(self):
        """The ladder: base seed first, derived seeds after, one sleep per retry."""
        sleeps = []
        task = FlakyTask(failures=2)
        policy = RetryPolicy(
            retries=3,
            backoff_base=0.1,
            backoff_factor=2.0,
            backoff_cap=10.0,
            sleep=sleeps.append,
        )
        outcome = ResilientExecutor(retry=policy).run_trial(task, key="k", seed=11)
        assert outcome.status == OK
        assert outcome.attempts == 3
        assert task.seeds == [
            11,
            derive_seed(11, "retry", 1),
            derive_seed(11, "retry", 2),
        ]
        assert outcome.seed == task.seeds[-1]  # the seed that succeeded
        assert sleeps == [0.1, 0.2]  # backoff before each retry, in order

    def test_exhausted_retries_fail_with_last_error(self):
        task = FlakyTask(failures=10)
        policy = RetryPolicy(retries=2, sleep=lambda _: None)
        outcome = ResilientExecutor(retry=policy).run_trial(task, key="k", seed=0)
        assert not outcome.ok and outcome.status == FAILED
        assert outcome.attempts == 3
        assert "flake #3" in outcome.error

    @pytest.mark.skipif(not timeouts_supported(), reason="no SIGALRM here")
    def test_timeout_status(self):
        import time

        executor = ResilientExecutor(timeout_seconds=0.05)
        outcome = executor.run_trial(
            lambda seed: time.sleep(5.0), key="k", seed=0
        )
        assert outcome.status == TIMEOUT
        assert "budget" in outcome.error


class TestQuarantine:
    def test_blocks_after_threshold(self):
        quarantine = Quarantine(threshold=2)
        executor = ResilientExecutor(quarantine=quarantine)
        bad = FlakyTask(failures=10 ** 6)
        assert executor.run_trial(bad, key="k", seed=0).status == FAILED
        assert executor.run_trial(bad, key="k", seed=1).status == FAILED
        calls_before = bad.calls
        outcome = executor.run_trial(bad, key="k", seed=2)
        assert outcome.status == QUARANTINED
        assert outcome.attempts == 0
        assert bad.calls == calls_before  # never invoked

    def test_success_clears_strikes(self):
        quarantine = Quarantine(threshold=2)
        quarantine.record_failure("k")
        quarantine.record_success("k")
        quarantine.record_failure("k")
        assert not quarantine.blocks("k")

    def test_other_keys_unaffected(self):
        quarantine = Quarantine(threshold=1)
        quarantine.record_failure("bad")
        assert quarantine.blocks("bad")
        assert not quarantine.blocks("good")


class TestResume:
    def test_completed_trials_are_not_rerun(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        first = ResilientExecutor(journal=journal)
        first.run_trial(FlakyTask(), key="done", seed=3, n=8)

        second = ResilientExecutor(journal=journal)
        assert second.load_completed() == 1
        task = FlakyTask()
        outcome = second.run_trial(task, key="done", seed=3, n=8)
        assert outcome.status == RESUMED and outcome.ok
        assert task.calls == 0  # resumed from the journal, not re-executed
        assert outcome.value == {"seed": 3, "n": 8}

    def test_failed_trials_are_retried_on_resume(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        first = ResilientExecutor(journal=journal)
        first.run_trial(FlakyTask(failures=10), key="bad", seed=0)

        second = ResilientExecutor(journal=journal)
        assert second.load_completed() == 0  # failures are not resumable
        outcome = second.run_trial(FlakyTask(), key="bad", seed=0)
        assert outcome.status == OK  # ran live this time

    def test_resume_survives_half_written_journal(self, tmp_path):
        """A process killed mid-append must not poison the resume."""
        journal = Journal(tmp_path / "j.jsonl")
        first = ResilientExecutor(journal=journal)
        first.run_trial(FlakyTask(), key="a", seed=0)
        first.run_trial(FlakyTask(), key="b", seed=1)
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "c", "status": "ok", "val')  # torn write

        second = ResilientExecutor(journal=journal)
        assert second.load_completed() == 2  # a and b survive, c does not
        assert second.run_trial(FlakyTask(), key="a", seed=0).status == RESUMED
        live = second.run_trial(FlakyTask(), key="c", seed=2)
        assert live.status == OK  # c re-runs


class TestSerialization:
    def test_default_serialize_prefers_summary(self):
        class WithSummary:
            def summary(self):
                return {"x": 1}

        assert default_serialize(WithSummary()) == {"x": 1}
        assert default_serialize([1, "a", None]) == [1, "a", None]
        assert default_serialize({1: WithSummary()}) == {"1": {"x": 1}}
        assert default_serialize(object()).startswith("<object")

    def test_journal_records_are_json_safe(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        executor = ResilientExecutor(journal=journal)
        executor.run_trial(lambda seed: {"seed": seed}, key="k", seed=5)
        (record,) = journal.load()
        assert record["key"] == "k"
        assert record["status"] == OK
        assert record["value"] == {"seed": 5}
