"""Tests for per-trial wall-clock budgets (repro.exec.timeout)."""

import signal
import time

import pytest

from repro.errors import TrialFailed, TrialTimeout
from repro.exec import call_with_timeout, timeouts_supported

needs_timeouts = pytest.mark.skipif(
    not timeouts_supported(), reason="SIGALRM timeouts unavailable here"
)


class TestCallWithTimeout:
    def test_disabled_timeout_passes_through(self):
        assert call_with_timeout(lambda x: x + 1, None, 41) == 42
        assert call_with_timeout(lambda x: x + 1, 0, 41) == 42

    @needs_timeouts
    def test_fast_call_completes(self):
        assert call_with_timeout(lambda: "done", 5.0) == "done"

    @needs_timeouts
    def test_slow_call_raises_trial_timeout(self):
        def stall():
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                pass  # busy loop: proves the interrupt lands mid-computation

        started = time.monotonic()
        with pytest.raises(TrialTimeout):
            call_with_timeout(stall, 0.05)
        assert time.monotonic() - started < 1.0

    @needs_timeouts
    def test_timeout_is_a_trial_failure(self):
        with pytest.raises(TrialFailed):
            call_with_timeout(time.sleep, 0.05, 5.0)

    @needs_timeouts
    def test_handler_and_timer_restored(self):
        before = signal.getsignal(signal.SIGALRM)
        call_with_timeout(lambda: None, 5.0)
        assert signal.getsignal(signal.SIGALRM) is before
        with pytest.raises(TrialTimeout):
            call_with_timeout(time.sleep, 0.05, 5.0)
        assert signal.getsignal(signal.SIGALRM) is before
        # No pending alarm may fire after the call returned.
        time.sleep(0.08)

    @needs_timeouts
    def test_exceptions_propagate_and_clean_up(self):
        before = signal.getsignal(signal.SIGALRM)
        with pytest.raises(ValueError):
            call_with_timeout(lambda: (_ for _ in ()).throw(ValueError("x")), 5.0)
        assert signal.getsignal(signal.SIGALRM) is before
