"""Tests for per-trial wall-clock budgets (repro.exec.timeout)."""

import signal
import threading
import time

import pytest

from repro.errors import TrialFailed, TrialTimeout
from repro.exec import call_with_timeout, timeouts_supported

needs_timeouts = pytest.mark.skipif(
    not timeouts_supported(), reason="SIGALRM timeouts unavailable here"
)


def _in_worker_thread(fn):
    """Run ``fn`` on a non-main thread, re-raising whatever it raised.

    Exercises the portable thread-based deadline path (signals never
    reach worker threads).
    """
    box = {}

    def _run():
        try:
            box["value"] = fn()
        except BaseException as exc:  # surfaced to the test below
            box["error"] = exc

    worker = threading.Thread(target=_run)
    worker.start()
    worker.join(30.0)
    assert not worker.is_alive(), "worker wedged"
    if "error" in box:
        raise box["error"]
    return box["value"]


class TestCallWithTimeout:
    def test_disabled_timeout_passes_through(self):
        assert call_with_timeout(lambda x: x + 1, None, 41) == 42
        assert call_with_timeout(lambda x: x + 1, 0, 41) == 42

    @needs_timeouts
    def test_fast_call_completes(self):
        assert call_with_timeout(lambda: "done", 5.0) == "done"

    @needs_timeouts
    def test_slow_call_raises_trial_timeout(self):
        def stall():
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                pass  # busy loop: proves the interrupt lands mid-computation

        started = time.monotonic()
        with pytest.raises(TrialTimeout):
            call_with_timeout(stall, 0.05)
        assert time.monotonic() - started < 1.0

    @needs_timeouts
    def test_timeout_is_a_trial_failure(self):
        with pytest.raises(TrialFailed):
            call_with_timeout(time.sleep, 0.05, 5.0)

    @needs_timeouts
    def test_handler_and_timer_restored(self):
        before = signal.getsignal(signal.SIGALRM)
        call_with_timeout(lambda: None, 5.0)
        assert signal.getsignal(signal.SIGALRM) is before
        with pytest.raises(TrialTimeout):
            call_with_timeout(time.sleep, 0.05, 5.0)
        assert signal.getsignal(signal.SIGALRM) is before
        # No pending alarm may fire after the call returned.
        time.sleep(0.08)

    @needs_timeouts
    def test_exceptions_propagate_and_clean_up(self):
        before = signal.getsignal(signal.SIGALRM)
        with pytest.raises(ValueError):
            call_with_timeout(lambda: (_ for _ in ()).throw(ValueError("x")), 5.0)
        assert signal.getsignal(signal.SIGALRM) is before


class TestThreadFallback:
    """Deadlines enforced off the main thread (no SIGALRM available)."""

    def test_supported_everywhere(self):
        # The fallback makes deadlines universally available; callers that
        # used to degrade to uncapped runs now always get a budget.
        assert timeouts_supported()
        assert _in_worker_thread(timeouts_supported)

    def test_fast_call_completes_off_main_thread(self):
        assert _in_worker_thread(lambda: call_with_timeout(lambda: "ok", 5.0)) == "ok"

    def test_slow_call_raises_trial_timeout_off_main_thread(self):
        started = time.monotonic()
        with pytest.raises(TrialTimeout):
            _in_worker_thread(lambda: call_with_timeout(time.sleep, 0.05, 5.0))
        assert time.monotonic() - started < 1.0

    def test_timeout_is_a_trial_failure_off_main_thread(self):
        with pytest.raises(TrialFailed):
            _in_worker_thread(lambda: call_with_timeout(time.sleep, 0.05, 5.0))

    def test_exceptions_propagate_off_main_thread(self):
        def boom():
            raise ValueError("x")

        with pytest.raises(ValueError):
            _in_worker_thread(lambda: call_with_timeout(boom, 5.0))

    def test_signal_state_untouched_off_main_thread(self):
        before = signal.getsignal(signal.SIGALRM)
        with pytest.raises(TrialTimeout):
            _in_worker_thread(lambda: call_with_timeout(time.sleep, 0.05, 5.0))
        assert signal.getsignal(signal.SIGALRM) is before
