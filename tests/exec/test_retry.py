"""Tests for the retry policy (repro.exec.retry)."""

import pytest

from repro.errors import ConfigurationError
from repro.exec import RetryPolicy
from repro.rng import derive_seed


class TestRetryPolicy:
    def test_max_attempts(self):
        assert RetryPolicy().max_attempts == 1
        assert RetryPolicy(retries=3).max_attempts == 4

    def test_backoff_ladder_is_capped_exponential(self):
        policy = RetryPolicy(
            retries=5, backoff_base=0.1, backoff_factor=2.0, backoff_cap=0.5
        )
        assert policy.delays() == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_attempt_seeds_start_with_base_seed(self):
        policy = RetryPolicy(retries=2)
        seeds = list(policy.attempt_seeds(1234))
        assert seeds[0] == 1234
        assert seeds[1] == derive_seed(1234, "retry", 1)
        assert seeds[2] == derive_seed(1234, "retry", 2)
        assert len(set(seeds)) == 3  # all distinct
        assert seeds == list(policy.attempt_seeds(1234))  # deterministic

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
