"""Journal v2: checksums, sequence numbers, quarantine, fsck, degradation.

Every corruption mode the resilience layer claims to survive
(docs/RESILIENCE.md) gets a test here: torn tails from a process killed
mid-append, CRC bit-flips, binary garbage, empty files, v1 journals read
by v2, and a full disk mid-campaign.
"""

import json
import os

import pytest

from repro.exec import FsckReport, Journal, fsck_journal
from repro.exec.journal import CRC_KEY, SEQ_KEY, record_crc


def write_v2_journal(path, records):
    """Author a valid v2 journal on disk without going through Journal."""
    journal = Journal(path)
    for record in records:
        journal.append(record)
    journal.close()
    return path


class TestEnvelope:
    def test_records_are_sealed_with_crc_and_seq(self, tmp_path):
        path = write_v2_journal(tmp_path / "j.jsonl", [{"key": "a"}, {"key": "b"}])
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l[SEQ_KEY] for l in lines] == [0, 1]
        for line in lines:
            payload = {k: v for k, v in line.items() if k not in (CRC_KEY, SEQ_KEY)}
            assert line[CRC_KEY] == record_crc(payload)

    def test_envelope_is_stripped_on_read(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append({"key": "a", "value": 1})
        (record,) = journal.load()
        assert record == {"key": "a", "value": 1}
        assert journal.verified_records == 1

    def test_crc_is_order_insensitive(self):
        assert record_crc({"a": 1, "b": 2}) == record_crc({"b": 2, "a": 1})
        assert record_crc({"a": 1}) != record_crc({"a": 2})

    def test_seq_resumes_across_journal_objects(self, tmp_path):
        path = write_v2_journal(tmp_path / "j.jsonl", [{"key": "a"}, {"key": "b"}])
        reopened = Journal(path)
        reopened.append({"key": "c"})
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l[SEQ_KEY] for l in lines] == [0, 1, 2]


class TestCorruptionRecovery:
    def test_truncated_mid_record_tail_is_quarantined(self, tmp_path):
        """kill -9 mid-append: the torn fragment moves to the sidecar."""
        path = write_v2_journal(tmp_path / "j.jsonl", [{"key": "a"}, {"key": "b"}])
        with open(path, "ab") as handle:
            handle.write(b'{"key": "c", "val')  # no newline: torn write
        journal = Journal(path)
        journal.append({"key": "d"})  # forces tail healing before the write
        assert [r["key"] for r in journal.load()] == ["a", "b", "d"]
        assert journal.corrupt_path.exists()
        assert b'"val' in journal.corrupt_path.read_bytes()
        # The journal itself is whole lines again.
        assert path.read_bytes().endswith(b"\n")

    def test_crc_bitflip_is_detected_and_skipped(self, tmp_path):
        path = write_v2_journal(
            tmp_path / "j.jsonl", [{"key": "a", "value": 1}, {"key": "b", "value": 2}]
        )
        data = path.read_bytes().replace(b'"value": 1', b'"value": 7')
        path.write_bytes(data)
        journal = Journal(path)
        assert [r["key"] for r in journal.load()] == ["b"]
        assert journal.corrupt_lines == 1
        assert journal.verified_records == 1

    def test_binary_garbage_lines_do_not_kill_the_load(self, tmp_path):
        path = write_v2_journal(tmp_path / "j.jsonl", [{"key": "a"}])
        with open(path, "ab") as handle:
            handle.write(b"\x00\xff\xfe garbage \x80\n")
            handle.write(b"\xde\xad\xbe\xef\n")
        journal = Journal(path)
        assert [r["key"] for r in journal.load()] == ["a"]
        assert journal.corrupt_lines == 2

    def test_empty_file_loads_clean(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_bytes(b"")
        journal = Journal(path)
        assert journal.load() == []
        assert journal.corrupt_lines == 0
        report = fsck_journal(path)
        assert report.clean and report.total_lines == 0

    def test_v1_journal_loads_as_unverified(self, tmp_path):
        """Pre-checksum journals stay readable — flagged, not rejected."""
        path = tmp_path / "j.jsonl"
        path.write_text('{"key": "a"}\n{"key": "b"}\n')
        journal = Journal(path)
        assert [r["key"] for r in journal.load()] == ["a", "b"]
        assert journal.unverified_records == 2
        assert journal.verified_records == 0
        assert journal.corrupt_lines == 0

    def test_mixed_v1_v2_journal(self, tmp_path):
        path = write_v2_journal(tmp_path / "j.jsonl", [{"key": "v2"}])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "v1"}\n')
        journal = Journal(path)
        assert [r["key"] for r in journal.load()] == ["v2", "v1"]
        assert journal.verified_records == 1
        assert journal.unverified_records == 1


class TestAppendFastPath:
    def test_handle_is_reused_across_appends(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append({"key": 0})
        handle = journal._handle
        for i in range(1, 20):
            journal.append({"key": i})
        assert journal._handle is handle  # O(1): no reopen per append
        assert len(journal.load()) == 20

    def test_external_append_reverifies_the_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append({"key": "a"})
        with open(path, "ab") as handle:
            handle.write(b'{"torn')  # another writer tears the tail
        journal.append({"key": "b"})
        assert [r["key"] for r in journal.load()] == ["a", "b"]
        assert journal.corrupt_path.exists()

    def test_path_replaced_underneath_is_detected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append({"key": "a"})
        path.unlink()
        journal.append({"key": "b"})
        assert [r["key"] for r in journal.load()] == ["b"]


class TestDegradation:
    class _FullDiskHandle:
        """A handle whose writes fail like a disk that just filled up."""

        def write(self, data):
            raise OSError(28, "No space left on device")

        def flush(self):  # pragma: no cover - write raises first
            pass

        def fileno(self):  # pragma: no cover - write raises first
            return -1

        def close(self):
            pass

    def test_enospc_degrades_instead_of_crashing(self, tmp_path, capsys):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append({"key": "a"})
        journal._handle.close()
        journal._handle = self._FullDiskHandle()
        journal.append({"key": "b"})  # must not raise
        assert journal.degraded
        assert "No space left on device" in journal.degraded_reason
        assert "NOT resumable" in capsys.readouterr().err
        # Later appends go straight to memory, and reads see everything.
        journal.append({"key": "c"})
        assert [r["key"] for r in journal.load()] == ["a", "b", "c"]

    def test_unwritable_path_degrades_on_first_append(self, tmp_path, capsys):
        journal = Journal(tmp_path)  # a directory: open("ab") fails
        journal.append({"key": "a"})
        assert journal.degraded
        assert "WARNING" in capsys.readouterr().err
        assert journal.load() == [{"key": "a"}]


class TestClear:
    def test_clear_removes_quarantine_sidecar(self, tmp_path):
        """A fresh campaign must not inherit the old run's quarantine."""
        path = write_v2_journal(tmp_path / "j.jsonl", [{"key": "a"}])
        with open(path, "ab") as handle:
            handle.write(b'{"torn')  # tear the tail...
        journal = Journal(path)
        journal.append({"key": "b"})  # ...healing quarantines it
        assert journal.corrupt_path.exists()
        journal.clear()
        assert not path.exists()
        assert not journal.corrupt_path.exists()

    def test_clear_resets_counters_and_sequence(self, tmp_path):
        path = write_v2_journal(tmp_path / "j.jsonl", [{"key": "a"}])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "v1"}\n')  # one unverified record
        journal = Journal(path)
        journal.load()
        assert (journal.verified_records, journal.unverified_records) == (1, 1)
        journal.clear()
        assert journal.verified_records == 0
        assert journal.unverified_records == 0
        assert journal.corrupt_lines == 0
        journal.append({"key": "fresh"})
        line = json.loads(path.read_text().splitlines()[0])
        assert line[SEQ_KEY] == 0  # sequence restarts with the new campaign

    def test_clear_in_degraded_memory_mode(self, tmp_path, capsys):
        journal = Journal(tmp_path)  # a directory: first append degrades
        journal.append({"key": "a"})
        assert journal.degraded and journal.load() == [{"key": "a"}]
        capsys.readouterr()
        journal.clear()
        assert not journal.degraded
        assert journal.degraded_reason is None
        assert journal.load() == []  # in-memory records dropped too

    def test_clear_without_artifacts_is_a_noop(self, tmp_path):
        journal = Journal(tmp_path / "never-written.jsonl")
        journal.clear()  # must not raise
        assert journal.load() == []


class TestCounterSnapshot:
    """iter_records() refreshes counters atomically, after full iteration."""

    def _journal_with_one_of_each(self, tmp_path):
        path = write_v2_journal(
            tmp_path / "j.jsonl", [{"key": "a"}, {"key": "b"}]
        )
        with open(path, "ab") as handle:
            handle.write(b'{"key": "v1"}\n')  # unverified (no envelope)
            handle.write(b"\xde\xad garbage\n")  # corrupt
        return Journal(path)

    def test_partial_iteration_does_not_clobber_counters(self, tmp_path):
        journal = self._journal_with_one_of_each(tmp_path)
        journal.load()
        before = (
            journal.verified_records,
            journal.unverified_records,
            journal.corrupt_lines,
        )
        assert before == (2, 1, 1)
        iterator = journal.iter_records()
        next(iterator)  # consume one record, then abandon the iterator
        assert (
            journal.verified_records,
            journal.unverified_records,
            journal.corrupt_lines,
        ) == before

    def test_full_iteration_refreshes_counters(self, tmp_path):
        journal = self._journal_with_one_of_each(tmp_path)
        assert len(list(journal.iter_records())) == 3
        assert journal.verified_records == 2
        assert journal.unverified_records == 1
        assert journal.corrupt_lines == 1

    def test_interleaved_iterations_are_independent(self, tmp_path):
        journal = self._journal_with_one_of_each(tmp_path)
        outer = journal.iter_records()
        next(outer)
        # A nested full pass (e.g. a report while resume is scanning).
        assert len(journal.load()) == 3
        snapshot = (journal.verified_records, journal.corrupt_lines)
        list(outer)  # finishing the outer pass re-lands the same snapshot
        assert (journal.verified_records, journal.corrupt_lines) == snapshot


class TestLastManifest:
    def _manifest(self, run):
        return {"kind": "manifest", "command": "sweep", "run": run}

    def test_latest_manifest_wins(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append(self._manifest(1))
        journal.append({"key": "a", "status": "ok"})
        journal.append(self._manifest(2))
        journal.append({"key": "b", "status": "ok"})
        manifest = journal.last_manifest()
        assert manifest is not None and manifest["run"] == 2

    def test_returns_none_without_manifests(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append({"key": "a"})
        assert journal.last_manifest() is None
        assert Journal(tmp_path / "absent.jsonl").last_manifest() is None

    def test_tail_scan_does_not_touch_counters(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append(self._manifest(1))
        journal.append({"key": "a"})
        journal.load()
        before = journal.verified_records
        assert before == 2
        journal.last_manifest()
        assert journal.verified_records == before

    def test_corrupt_tail_is_skipped(self, tmp_path):
        path = write_v2_journal(
            tmp_path / "j.jsonl", [self._manifest(1), {"key": "a"}]
        )
        with open(path, "ab") as handle:
            handle.write(b'{"kind": "manifest", "torn')
        manifest = Journal(path).last_manifest()
        assert manifest is not None and manifest["run"] == 1

    def test_degraded_memory_records_are_seen_first(self, tmp_path, capsys):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append(self._manifest(1))
        journal._handle.close()
        journal._handle = TestDegradation._FullDiskHandle()
        journal.append(self._manifest(2))  # lands in memory, degraded
        capsys.readouterr()
        manifest = journal.last_manifest()
        assert manifest is not None and manifest["run"] == 2


class TestFsck:
    def _corrupt_journal(self, tmp_path):
        path = write_v2_journal(
            tmp_path / "j.jsonl", [{"key": i} for i in range(4)]
        )
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b"\xde\xad not json\n"  # corrupt record 1 (line 2)
        del lines[2]  # drop record 2 entirely: a sequence gap
        path.write_bytes(b"".join(lines) + b'{"torn')  # and tear the tail
        return path

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            fsck_journal(tmp_path / "absent.jsonl")

    def test_clean_journal_reports_clean(self, tmp_path):
        path = write_v2_journal(tmp_path / "j.jsonl", [{"key": "a"}, {"key": "b"}])
        report = fsck_journal(path)
        assert report.clean
        assert (report.verified, report.unverified, report.corrupt) == (2, 0, 0)
        assert not report.torn_tail
        assert "verdict: clean" in report.render()

    def test_fsck_finds_every_corruption_mode(self, tmp_path):
        report = fsck_journal(self._corrupt_journal(tmp_path))
        assert not report.clean
        assert report.verified == 2  # records 0 and 3 survive
        assert report.corrupt == 2  # the bit-rotted line and the torn tail
        assert report.corrupt_line_numbers == [2, 4]
        assert report.torn_tail
        assert report.seq_missing == 2  # seqs 1 and 2 are gone
        assert "NEEDS ATTENTION" in report.render()

    def test_fsck_detects_duplicate_sequence_numbers(self, tmp_path):
        path = write_v2_journal(tmp_path / "j.jsonl", [{"key": "a"}])
        line = path.read_bytes()
        path.write_bytes(line + line)  # replayed record: same _seq twice
        report = fsck_journal(path)
        assert report.seq_duplicates == 1
        assert not report.clean

    def test_repair_quarantines_and_rewrites_atomically(self, tmp_path):
        path = self._corrupt_journal(tmp_path)
        report = fsck_journal(path, repair=True)
        assert report.repaired
        assert report.quarantined == 2
        sidecar = path.with_name(path.name + ".corrupt")
        assert b"\xde\xad" in sidecar.read_bytes()
        assert b'{"torn' in sidecar.read_bytes()
        # The repaired journal is clean apart from the already-lost seqs.
        after = fsck_journal(path)
        assert after.corrupt == 0
        assert not after.torn_tail
        assert after.verified == 2
        # And it loads without complaints.
        journal = Journal(path)
        assert [r["key"] for r in journal.load()] == [0, 3]
        assert journal.corrupt_lines == 0

    def test_repair_is_a_noop_on_clean_journals(self, tmp_path):
        path = write_v2_journal(tmp_path / "j.jsonl", [{"key": "a"}])
        before = path.read_bytes()
        report = fsck_journal(path, repair=True)
        assert not report.repaired
        assert path.read_bytes() == before

    def test_report_as_dict_matches_clean_property(self, tmp_path):
        path = write_v2_journal(tmp_path / "j.jsonl", [{"key": "a"}])
        report = fsck_journal(path)
        as_dict = report.as_dict()
        assert as_dict["clean"] is True
        assert as_dict["path"] == str(path)
        assert isinstance(report, FsckReport)
