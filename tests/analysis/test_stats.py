"""Unit tests for success-rate statistics (repro.analysis.stats)."""

import math

import pytest

from repro.analysis.stats import (
    BernoulliSummary,
    chernoff_upper_tail,
    mean,
    median,
    summarize_trials,
    wilson_interval,
)


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(30, 60)
        assert lo < 0.5 < hi

    def test_narrower_with_more_trials(self):
        lo1, hi1 = wilson_interval(5, 10)
        lo2, hi2 = wilson_interval(500, 1000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_behaves_at_extremes(self):
        lo, hi = wilson_interval(0, 20)
        assert lo == 0.0 and 0 < hi < 0.4
        lo, hi = wilson_interval(20, 20)
        assert 0.6 < lo < 1 and hi == 1.0

    def test_bounds_clipped_to_unit(self):
        lo, hi = wilson_interval(1, 2)
        assert 0.0 <= lo <= hi <= 1.0

    def test_validates(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)


class TestChernoff:
    def test_matches_formula(self):
        # P[X >= 2 mu] <= exp(-mu/3)
        assert chernoff_upper_tail(9.0, 2.0) == pytest.approx(math.exp(-3.0))

    def test_smaller_for_larger_mean(self):
        assert chernoff_upper_tail(100, 1.5) < chernoff_upper_tail(10, 1.5)

    def test_validates(self):
        with pytest.raises(ValueError):
            chernoff_upper_tail(-1, 2)
        with pytest.raises(ValueError):
            chernoff_upper_tail(1, 0.5)


class TestBernoulliSummary:
    def test_rate(self):
        assert BernoulliSummary(3, 4).rate == 0.75

    def test_at_least(self):
        summary = BernoulliSummary(19, 20)
        assert summary.at_least(0.9)
        assert not summary.clearly_below(0.9)

    def test_clearly_below(self):
        summary = BernoulliSummary(1, 100)
        assert summary.clearly_below(0.5)

    def test_summarize_trials(self):
        summary = summarize_trials([True, True, False])
        assert summary.successes == 2
        assert summary.trials == 3

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_trials([])


class TestHelpers:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_median_odd_even(self):
        assert median([3, 1, 2]) == 2
        assert median([1, 2, 3, 4]) == 2.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])
        with pytest.raises(ValueError):
            median([])
