"""Tests for the fault-tolerant sweep driver (repro.analysis.resilient_sweep)."""

import pytest

from repro.analysis import ResilientSweepResult, resilient_sweep, sweep
from repro.errors import TrialFailed


def _ok_task(seed, **point):
    return {"seed": seed, **point}


class TestPartialResults:
    def test_failures_degrade_to_annotated_partials(self):
        trial_counter = {"n": 0}

        def task(seed, n):
            if n == 8:
                trial_counter["n"] += 1
                if trial_counter["n"] % 2 == 1:
                    raise TrialFailed("bad config")
            return seed

        result = resilient_sweep(task, {"n": [4, 8]}, trials=4, master_seed=0)
        assert result.attempted == 8
        assert result.completed + result.failed == 8
        assert result.failed >= 1 and not result.complete
        good, bad = result.points
        assert good.failed == 0 and len(good.results) == 4
        assert bad.failed >= 1
        assert len(bad.results) == bad.completed
        # Every failure is observable with its key and error.
        for outcome in result.failures:
            assert "n=8" in outcome.key
            assert "bad config" in outcome.error
        row = bad.as_row()
        assert row["attempted"] == 4
        assert row["failed"] == bad.failed

    def test_counts_shape(self):
        result = resilient_sweep(_ok_task, {"n": [4]}, trials=2)
        assert result.counts() == {"attempted": 2, "completed": 2, "failed": 0}
        assert result.complete


class TestParityWithPlainSweep:
    def test_same_seeds_and_results_as_sweep(self):
        grid = {"n": [4, 8], "alpha": [0.25, 0.5]}
        plain = sweep(_ok_task, grid, trials=3, master_seed=42)
        resilient = resilient_sweep(_ok_task, grid, trials=3, master_seed=42)
        assert resilient.rows() == plain

    def test_grid_validation_matches_sweep(self):
        with pytest.raises(ValueError):
            resilient_sweep(_ok_task, {}, trials=1)
        with pytest.raises(ValueError):
            resilient_sweep(_ok_task, {"n": [4]}, trials=0)


class TestJournalledResume:
    def test_resume_skips_finished_trials(self, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        calls = []

        def task(seed, n):
            calls.append((n, seed))
            return {"n": n, "seed": seed}

        first = resilient_sweep(
            task, {"n": [4, 8]}, trials=2, journal_path=journal
        )
        assert first.complete and len(calls) == 4

        # Simulate the kill/restart: a fresh process resumes the journal.
        calls.clear()
        second = resilient_sweep(
            task, {"n": [4, 8]}, trials=2, journal_path=journal, resume=True
        )
        assert calls == []  # nothing re-ran
        assert second.attempted == 4 and second.complete
        # Journalled values come back (serialised form of the originals).
        for point, results in second.rows():
            assert all(r["n"] == point["n"] for r in results)

    def test_resume_reruns_only_missing_trials(self, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        resilient_sweep(
            _ok_task, {"n": [4]}, trials=2, journal_path=journal
        )
        # Same journal, wider campaign: only the new point runs live.
        calls = []

        def task(seed, n):
            calls.append(n)
            return _ok_task(seed, n=n)

        result = resilient_sweep(
            task, {"n": [4, 8]}, trials=2, journal_path=journal, resume=True
        )
        assert calls == [8, 8]
        assert result.attempted == 4 and result.complete

    def test_fresh_run_clears_stale_journal(self, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        resilient_sweep(_ok_task, {"n": [4]}, trials=1, journal_path=journal)
        calls = []

        def task(seed, n):
            calls.append(n)
            return _ok_task(seed, n=n)

        resilient_sweep(task, {"n": [4]}, trials=1, journal_path=journal)
        assert calls == [4]  # no resume without the flag


class TestRetriesInSweep:
    def test_transient_failures_recover_without_losing_the_point(self):
        attempts = {}

        def task(seed, n):
            attempts[n] = attempts.get(n, 0) + 1
            if n == 8 and attempts[n] == 1:
                raise TrialFailed("transient")
            return seed

        from repro.exec import ResilientExecutor, RetryPolicy

        executor = ResilientExecutor(
            retry=RetryPolicy(retries=1, sleep=lambda _: None)
        )
        result = resilient_sweep(
            task, {"n": [4, 8]}, trials=1, executor=executor
        )
        assert result.complete
        assert attempts[8] == 2


class TestResultShape:
    def test_empty_result_is_complete(self):
        assert ResilientSweepResult().complete
        assert ResilientSweepResult().counts() == {
            "attempted": 0, "completed": 0, "failed": 0,
        }
