"""Unit tests for sweeps and table rendering (repro.analysis)."""

import pytest

from repro.analysis.sweeps import collect, monte_carlo, sweep
from repro.analysis.tables import format_table


def fake_task(seed, n=0, alpha=0.0):
    return {"seed": seed, "n": n, "alpha": alpha}


class TestMonteCarlo:
    def test_runs_trials_with_distinct_seeds(self):
        results = monte_carlo(fake_task, trials=5, master_seed=1, n=8)
        assert len(results) == 5
        assert len({r["seed"] for r in results}) == 5

    def test_reproducible(self):
        a = monte_carlo(fake_task, trials=3, master_seed=1)
        b = monte_carlo(fake_task, trials=3, master_seed=1)
        assert a == b

    def test_validates_trials(self):
        with pytest.raises(ValueError):
            monte_carlo(fake_task, trials=0)


class TestSweep:
    def test_crosses_grid(self):
        rows = sweep(fake_task, {"n": [8, 16], "alpha": [0.5, 1.0]}, trials=2)
        points = [point for point, _ in rows]
        assert len(points) == 4
        assert {"n": 8, "alpha": 0.5} in points

    def test_point_seeds_stable_under_grid_growth(self):
        small = sweep(fake_task, {"n": [8]}, trials=2)
        large = sweep(fake_task, {"n": [8, 16]}, trials=2)
        assert small[0][1] == large[0][1]

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            sweep(fake_task, {})

    def test_collect_with_dict_reducer(self):
        rows = sweep(fake_task, {"n": [8]}, trials=3)
        flat = collect(rows, lambda results: {"count": len(results)})
        assert flat == [{"n": 8, "count": 3}]

    def test_collect_with_scalar_reducer(self):
        rows = sweep(fake_task, {"n": [8]}, trials=3)
        flat = collect(rows, len)
        assert flat == [{"n": 8, "value": 3}]


class TestFormatTable:
    def test_renders_columns_aligned(self):
        text = format_table(
            [{"a": 1, "b": "xx"}, {"a": 222, "b": "y"}], columns=["a", "b"]
        )
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len({len(line) for line in lines[-2:]}) == 1  # aligned rows

    def test_bool_and_float_formatting(self):
        text = format_table([{"ok": True, "x": 0.123456, "big": 123456.0}])
        assert "yes" in text
        assert "0.123" in text
        assert "1.23e+05" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="t")

    def test_title_rendered(self):
        assert format_table([{"a": 1}], title="hello").startswith("hello")

    def test_missing_column_values_blank(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert text
