"""Unit tests for scaling fits (repro.analysis.complexity)."""

import math

import pytest

from repro.analysis.complexity import (
    doubling_ratios,
    fit_power_law,
    normalized_curve,
    polylog_flatness,
)


class TestFitPowerLaw:
    def test_recovers_exact_sqrt(self):
        xs = [64, 256, 1024, 4096]
        ys = [3 * math.sqrt(x) for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.5, abs=1e-9)
        assert fit.prefactor == pytest.approx(3.0, rel=1e-6)
        assert fit.residual == pytest.approx(0.0, abs=1e-12)

    def test_recovers_linear(self):
        xs = [10, 100, 1000]
        fit = fit_power_law(xs, [7 * x for x in xs])
        assert fit.exponent == pytest.approx(1.0, abs=1e-9)

    def test_predict(self):
        xs = [2, 4, 8]
        fit = fit_power_law(xs, [x**2 for x in xs])
        assert fit.predict(16) == pytest.approx(256, rel=1e-6)

    def test_polylog_inflates_exponent_slightly(self):
        xs = [256.0, 1024.0, 4096.0]
        ys = [math.sqrt(x) * math.log(x) ** 1.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert 0.5 < fit.exponent < 0.85

    def test_validates(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 1])
        with pytest.raises(ValueError):
            fit_power_law([2, 2], [1, 1])


class TestNormalizedCurve:
    def test_flat_when_matching(self):
        xs = [64, 256, 1024]
        bound = lambda x: math.sqrt(x) * math.log(x)
        ys = [5 * bound(x) for x in xs]
        ratio = polylog_flatness(xs, ys, bound)
        assert ratio == pytest.approx(1.0)

    def test_detects_mismatch(self):
        xs = [64, 256, 1024]
        ys = [x for x in xs]  # linear vs sqrt bound
        ratio = polylog_flatness(xs, ys, math.sqrt)
        assert ratio == pytest.approx(4.0)

    def test_normalized_curve_values(self):
        curve = normalized_curve([4, 16], [8, 16], math.sqrt)
        assert curve == {4: 4.0, 16: 4.0}


class TestDoublingRatios:
    def test_sqrt_growth(self):
        xs = [256, 512, 1024]
        ys = [math.sqrt(x) for x in xs]
        for ratio in doubling_ratios(xs, ys):
            assert ratio == pytest.approx(math.sqrt(2))

    def test_requires_sorted_xs(self):
        with pytest.raises(ValueError):
            doubling_ratios([2, 1], [1, 2])
