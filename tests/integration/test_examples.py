"""Every example script must run end-to-end (small sizes)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

#: script -> small-size argv keeping each run in the seconds range.
CASES = {
    "quickstart.py": ["96"],
    "permissionless_committee.py": ["256"],
    "adversary_gauntlet.py": ["96", "0.5", "2"],
    "scaling_study.py": ["256"],
    "lowerbound_explorer.py": ["128"],
    "byzantine_frontier.py": ["96", "3"],
    "general_graphs_tour.py": ["100"],
    "rolling_epochs.py": ["96", "3"],
}


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(CASES), "new example? add it to CASES"


@pytest.mark.parametrize("script,args", sorted(CASES.items()))
def test_example_runs(script, args):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must print their findings"
