"""End-to-end integration tests with the paper's constants.

Slower than the unit suite (paper-sized committees and referee sets) but
they exercise the exact configuration the theorems describe.
"""

import subprocess
import sys

import pytest

from repro.core import (
    agree,
    agree_explicit,
    elect_leader,
    elect_leader_explicit,
)
from repro.lowerbound.bounds import agreement_upper_bound, le_upper_bound
from repro.rng import seed_sequence


class TestPaperConstantsLeaderElection:
    @pytest.mark.parametrize("adversary", ["random", "adaptive", "staggered"])
    def test_election_succeeds(self, adversary):
        for seed in seed_sequence(71, 3):
            result = elect_leader(n=128, alpha=0.5, seed=seed, adversary=adversary)
            assert result.success, (adversary, seed)

    def test_low_alpha_tolerates_many_faults(self):
        result = elect_leader(n=128, alpha=0.25, seed=72, adversary="random")
        assert result.success
        assert len(result.faulty) == 96  # 3n/4 faulty nodes

    def test_messages_track_theorem_bound(self):
        small = elect_leader(n=128, alpha=0.5, seed=73, adversary="none").messages
        large = elect_leader(n=512, alpha=0.5, seed=73, adversary="none").messages
        predicted = le_upper_bound(512, 0.5) / le_upper_bound(128, 0.5)
        assert large / small == pytest.approx(predicted, rel=0.6)


class TestPaperConstantsAgreement:
    @pytest.mark.parametrize("pattern", ["all0", "all1", "mixed", "single0"])
    def test_agreement_succeeds(self, pattern):
        for seed in seed_sequence(74, 3):
            result = agree(
                n=256, alpha=0.5, inputs=pattern, seed=seed, adversary="random"
            )
            assert result.success, (pattern, seed)

    def test_messages_track_theorem_bound(self):
        small = agree(n=256, alpha=0.5, inputs="mixed", seed=75).messages
        large = agree(n=1024, alpha=0.5, inputs="mixed", seed=75).messages
        predicted = agreement_upper_bound(1024, 0.5) / agreement_upper_bound(256, 0.5)
        assert large / small == pytest.approx(predicted, rel=0.6)

    def test_very_low_alpha(self):
        # alpha = 16/n region: tolerate n - log^2 n faults (the paper's
        # resilience ceiling).
        n = 256
        import math

        alpha = (math.log(n) ** 2) / n * 1.05
        result = agree(n=n, alpha=alpha, inputs="mixed", seed=76, adversary="random")
        assert result.success
        assert len(result.faulty) >= n - 2 * math.ceil(math.log(n) ** 2)


class TestExplicitEndToEnd:
    def test_explicit_election(self):
        result = elect_leader_explicit(n=128, alpha=0.5, seed=77, adversary="random")
        assert result.success
        assert result.knowledge_fraction > 0.99

    def test_explicit_agreement(self):
        result = agree_explicit(
            n=128, alpha=0.5, inputs="mixed", seed=78, adversary="random"
        )
        assert result.explicit_success


class TestCliSubprocess:
    def test_module_invocation(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "elect", "--n", "96", "--seed", "1",
             "--adversary", "staggered"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        assert "leader election" in completed.stdout
