"""Cross-cutting consistency checks: metrics vs trace vs results.

For every (protocol, adversary) pair, a traced run must satisfy the model
validator, and the numbers reported through three independent channels —
Metrics counters, the Trace event log, and the result object — must agree.
"""

import pytest

from repro.core import agree, elect_leader
from repro.core.agreement import MSG_VALUE
from repro.core.leader_election import MSG_LIST, MSG_RANK
from repro.sim import RunResult, validate_run

ADVERSARIES = ["none", "eager", "random", "staggered", "split", "adaptive"]


def _as_run(result):
    return RunResult(
        n=result.n,
        protocols=[],
        metrics=result.metrics,
        trace=result.trace,
        faulty=result.faulty,
        crashed=result.crashed,
        rounds=result.rounds,
    )


@pytest.mark.parametrize("adversary", ADVERSARIES)
def test_election_channels_agree(fast_params, adversary):
    result = elect_leader(
        n=96, alpha=0.5, seed=5, adversary=adversary,
        params=fast_params(96), collect_trace=True,
    )
    assert validate_run(_as_run(result)) == []
    assert result.trace.message_count() == result.messages
    assert len(list(result.trace.crashes())) == result.metrics.crashes == len(
        result.crashed
    )


@pytest.mark.parametrize("adversary", ADVERSARIES)
def test_agreement_channels_agree(fast_params, adversary):
    result = agree(
        n=96, alpha=0.5, inputs="mixed", seed=6, adversary=adversary,
        params=fast_params(96), collect_trace=True,
    )
    assert validate_run(_as_run(result)) == []
    assert result.trace.message_count() == result.messages


def test_election_message_kind_distribution(fast_params):
    """The per-kind counts must match the protocol's phase structure."""
    params = fast_params(96)
    result = elect_leader(
        n=96, alpha=0.5, seed=7, adversary="none", params=params
    )
    kinds = result.metrics.per_kind_messages
    committee = result.committee_size
    # Registration: exactly |C| * referee_count RANK messages.
    assert kinds[MSG_RANK] == committee * params.referee_count
    # Every other kind appears, and LIST forwarding dominates (the
    # alpha^{5/2} term of Theorem 4.1 comes from the rank lists).
    assert kinds[MSG_LIST] > kinds[MSG_RANK]
    assert set(kinds) == {MSG_RANK, MSG_LIST, "LE_PROP", "LE_AGG", "LE_CONF"}


def test_agreement_message_kind_distribution(fast_params):
    params = fast_params(96)
    result = agree(
        n=96, alpha=0.5, inputs="all1", seed=8, adversary="none", params=params
    )
    kinds = result.metrics.per_kind_messages
    # All-1 inputs: registrations only, no zero ever propagates.
    assert set(kinds) == {MSG_VALUE}
    assert kinds[MSG_VALUE] == result.committee_size * params.referee_count


def test_per_node_sent_totals(fast_params):
    result = elect_leader(
        n=96, alpha=0.5, seed=9, adversary="random", params=fast_params(96)
    )
    assert sum(result.metrics.per_node_sent.values()) == result.messages
    # Every candidate sent at least its referee registrations.
    for candidate in result.candidates_all:
        assert result.metrics.per_node_sent.get(candidate, 0) > 0
