"""Unit tests for the paper's parameter formulas (repro.params)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.params import (
    CongestBudget,
    Params,
    alpha_floor,
    default_params,
    fault_counts,
    max_faulty,
)


class TestAlphaFloor:
    def test_matches_formula(self):
        n = 1024
        assert alpha_floor(n) == pytest.approx(math.log(n) ** 2 / n)

    def test_capped_at_one(self):
        # For tiny n, log^2 n / n can exceed 1; the floor caps at 1.
        assert alpha_floor(2) <= 1.0

    def test_decreases_with_n(self):
        assert alpha_floor(4096) < alpha_floor(256) < alpha_floor(64)

    def test_rejects_tiny_network(self):
        with pytest.raises(ConfigurationError):
            alpha_floor(1)


class TestMaxFaulty:
    def test_half_faulty(self):
        assert max_faulty(1000, 0.5) == 500

    def test_alpha_one_means_no_faults(self):
        assert max_faulty(1000, 1.0) == 0

    def test_never_negative(self):
        assert max_faulty(8, 1.0) == 0

    def test_respects_log_squared_ceiling(self):
        # f <= n - log^2 n even when alpha allows more.
        n = 1024
        tiny_alpha = alpha_floor(n)
        assert max_faulty(n, tiny_alpha) <= n - math.ceil(math.log(n) ** 2)

    def test_monotone_in_alpha(self):
        assert max_faulty(512, 0.25) >= max_faulty(512, 0.5) >= max_faulty(512, 0.75)


class TestParamsValidation:
    def test_rejects_alpha_zero(self):
        with pytest.raises(ConfigurationError):
            Params(n=256, alpha=0.0)

    def test_rejects_alpha_above_one(self):
        with pytest.raises(ConfigurationError):
            Params(n=256, alpha=1.5)

    def test_rejects_alpha_below_floor_when_strict(self):
        n = 1024
        with pytest.raises(ConfigurationError):
            Params(n=n, alpha=alpha_floor(n) / 2)

    def test_allows_alpha_below_floor_when_not_strict(self):
        n = 1024
        params = Params(n=n, alpha=alpha_floor(n) / 2, strict=False)
        assert params.alpha < alpha_floor(n)

    def test_rejects_tiny_network(self):
        with pytest.raises(ConfigurationError):
            Params(n=4, alpha=0.5)

    def test_rejects_nonpositive_factors(self):
        with pytest.raises(ConfigurationError):
            Params(n=256, alpha=0.5, candidate_factor=0)
        with pytest.raises(ConfigurationError):
            Params(n=256, alpha=0.5, referee_factor=-1)
        with pytest.raises(ConfigurationError):
            Params(n=256, alpha=0.5, iteration_factor=0)

    def test_with_returns_modified_copy(self):
        params = Params(n=256, alpha=0.5)
        other = params.with_(alpha=0.25)
        assert other.alpha == 0.25
        assert params.alpha == 0.5
        assert other.n == params.n


class TestSamplingQuantities:
    def test_candidate_probability_formula(self):
        params = Params(n=1024, alpha=0.5)
        expected = 6 * math.log(1024) / (0.5 * 1024)
        assert params.candidate_probability == pytest.approx(expected)

    def test_candidate_probability_capped_at_one(self):
        params = Params(n=16, alpha=0.5, strict=False)
        assert params.candidate_probability <= 1.0

    def test_expected_candidates_is_theta_log_over_alpha(self):
        params = Params(n=4096, alpha=0.5)
        assert params.expected_candidates == pytest.approx(
            6 * math.log(4096) / 0.5
        )

    def test_referee_count_formula(self):
        params = Params(n=1024, alpha=0.5)
        expected = math.ceil(2 * math.sqrt(1024 * math.log(1024) / 0.5))
        assert params.referee_count == expected

    def test_referee_count_capped_at_ports(self):
        params = Params(n=64, alpha=0.5, referee_factor=100.0)
        assert params.referee_count == 63

    def test_iterations_scale_with_inverse_alpha(self):
        a = Params(n=1024, alpha=0.5).iterations
        b = Params(n=1024, alpha=0.25).iterations
        assert b == pytest.approx(2 * a, rel=0.05)

    def test_rank_space(self):
        assert Params(n=64, alpha=0.5).rank_space == 64**4

    def test_ablation_factors_change_quantities(self):
        base = Params(n=512, alpha=0.5)
        small = Params(n=512, alpha=0.5, candidate_factor=1.0, referee_factor=0.5)
        assert small.candidate_probability < base.candidate_probability
        assert small.referee_count < base.referee_count


class TestBoundFormulas:
    def test_le_bound_shape(self):
        params = Params(n=1024, alpha=0.5)
        expected = math.sqrt(1024) * math.log(1024) ** 2.5 / 0.5**2.5
        assert params.le_message_bound() == pytest.approx(expected)

    def test_agreement_bound_below_le_bound(self):
        params = Params(n=4096, alpha=0.25)
        assert params.agreement_message_bound() < params.le_message_bound()

    def test_lower_bound_below_upper_bounds(self):
        params = Params(n=4096, alpha=0.25)
        assert params.lower_bound_messages() < params.agreement_message_bound()

    def test_round_bound(self):
        params = Params(n=1024, alpha=0.25)
        assert params.round_bound() == pytest.approx(math.log(1024) / 0.25)

    def test_explicit_bound_is_superlinear_in_n(self):
        small = Params(n=256, alpha=0.5).explicit_message_bound()
        large = Params(n=512, alpha=0.5).explicit_message_bound()
        assert large > 2 * small


class TestSublinearityThresholds:
    def test_agreement_sublinear_at_high_alpha_large_n(self):
        assert Params(n=2**16, alpha=1.0).agreement_sublinear()

    def test_agreement_not_sublinear_at_low_alpha(self):
        params = Params(n=256, alpha=alpha_floor(256), strict=False)
        assert not params.agreement_sublinear()

    def test_le_threshold_is_stricter_than_agreement(self):
        # Wherever LE is sublinear, agreement is too.
        for n in (2**12, 2**20, 2**30):
            for alpha in (0.1, 0.5, 1.0):
                params = Params(n=n, alpha=alpha, strict=False)
                if params.le_sublinear():
                    assert params.agreement_sublinear()


class TestCongestBudget:
    def test_bits_scale_with_log_n(self):
        small = CongestBudget(n=256).bits_per_message
        large = CongestBudget(n=256**2).bits_per_message
        assert large == 2 * small

    def test_rank_message_fits(self):
        # A message carrying two ranks from [1, n^4] must fit.
        from repro.sim.message import Message

        for n in (8, 64, 1024, 2**16):
            budget = CongestBudget(n=n)
            message = Message("LE_PROP", (n**4, n**4))
            assert message.bits <= budget.bits_per_message


class TestHelpers:
    def test_default_params(self):
        params = default_params(512)
        assert params.n == 512
        assert params.alpha == 0.5

    def test_fault_counts_dict(self):
        info = fault_counts(512, 0.5)
        assert info["max_faulty"] == max_faulty(512, 0.5)
        assert info["min_nonfaulty"] == 512 - info["max_faulty"]
