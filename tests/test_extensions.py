"""Tests for the open-problem explorations (repro.extensions)."""

import pytest

from repro.extensions import (
    run_byzantine_agreement,
    run_byzantine_election,
    walk_based_leader_election,
)
from repro.extensions.general_graphs import build_graph, mixing_walk_length
from repro.rng import RngFactory, seed_sequence


class TestZeroForger:
    def test_breaks_validity_with_all_one_inputs(self):
        failures = sum(
            not run_byzantine_agreement(
                n=96, alpha=0.5, byzantine_count=1, seed=seed
            ).validity_holds
            for seed in seed_sequence(1, 6)
        )
        assert failures >= 5

    def test_honest_nodes_still_agree_on_the_forged_value(self):
        outcome = run_byzantine_agreement(n=96, alpha=0.5, byzantine_count=1, seed=2)
        assert outcome.agreement_holds
        assert set(outcome.honest_bits) == {0}

    def test_zero_forgers_harmless_with_zero_count(self):
        outcome = run_byzantine_agreement(n=96, alpha=0.5, byzantine_count=0, seed=3)
        assert outcome.validity_holds
        assert outcome.agreement_holds

    def test_decisions_exclude_byzantine_nodes(self):
        outcome = run_byzantine_agreement(n=96, alpha=0.5, byzantine_count=3, seed=4)
        assert not (set(outcome.decisions) & outcome.byzantine)


class TestRankForger:
    def test_captures_election(self):
        captures = sum(
            run_byzantine_election(
                n=96, alpha=0.5, byzantine_count=1, seed=seed
            ).byzantine_won
            for seed in seed_sequence(5, 6)
        )
        assert captures >= 5

    def test_intact_without_byzantine(self):
        outcome = run_byzantine_election(n=96, alpha=0.5, byzantine_count=0, seed=6)
        assert outcome.election_intact

    def test_unknown_attack_rejected(self):
        with pytest.raises(ValueError):
            run_byzantine_election(n=96, alpha=0.5, byzantine_count=1, attack="bogus")


class TestEquivocator:
    def test_voids_or_captures_election(self):
        bad = 0
        for seed in seed_sequence(7, 6):
            outcome = run_byzantine_election(
                n=96, alpha=0.5, byzantine_count=2, seed=seed, attack="equivocator"
            )
            bad += not outcome.election_intact
        assert bad >= 5


class TestWalkElection:
    def test_succeeds_on_expander(self):
        ok = sum(
            walk_based_leader_election(n=128, graph_kind="regular", seed=seed).success
            for seed in seed_sequence(8, 6)
        )
        assert ok >= 5

    def test_winner_is_max_rank_candidate(self):
        outcome = walk_based_leader_election(n=128, graph_kind="regular", seed=9)
        if outcome.success:
            best = max(outcome.ranks[u] for u in outcome.candidates)
            assert outcome.winner_rank == best

    def test_messages_scale_with_mixing_time(self):
        fast = walk_based_leader_election(n=144, graph_kind="regular", seed=10)
        slow = walk_based_leader_election(n=144, graph_kind="torus", seed=10)
        assert slow.messages > 2 * fast.messages

    def test_rejects_tiny_graph(self):
        with pytest.raises(ValueError):
            walk_based_leader_election(n=4)

    def test_deterministic_by_seed(self):
        a = walk_based_leader_election(n=64, graph_kind="regular", seed=11)
        b = walk_based_leader_election(n=64, graph_kind="regular", seed=11)
        assert a.messages == b.messages
        assert a.elected == b.elected


class TestGraphBuilders:
    def test_known_kinds(self):
        rng = RngFactory(0).stream("g")
        for kind in ("complete", "regular", "torus", "ring"):
            graph = build_graph(kind, 64, rng)
            assert graph.number_of_nodes() >= 49  # torus truncates to square

    def test_unknown_kind(self):
        rng = RngFactory(0).stream("g")
        with pytest.raises(ValueError):
            build_graph("hypercube", 64, rng)

    def test_walk_lengths_ordered_by_mixing(self):
        assert (
            mixing_walk_length("regular", 256)
            < mixing_walk_length("torus", 256)
            < mixing_walk_length("ring", 256)
        )


class TestMixingTimeEstimator:
    def test_ordering_matches_theory(self):
        from repro.extensions.general_graphs import estimate_mixing_time

        rng = RngFactory(0).stream("g")
        expander = estimate_mixing_time(build_graph("regular", 100, rng))
        torus = estimate_mixing_time(build_graph("torus", 100, rng))
        ring = estimate_mixing_time(build_graph("ring", 100, rng))
        assert expander < torus < ring

    def test_complete_graph_mixes_immediately(self):
        from repro.extensions.general_graphs import estimate_mixing_time

        rng = RngFactory(0).stream("g")
        assert estimate_mixing_time(build_graph("complete", 64, rng)) <= 16

    def test_disconnected_rejected(self):
        import networkx as nx

        from repro.extensions.general_graphs import estimate_mixing_time

        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            estimate_mixing_time(graph)
