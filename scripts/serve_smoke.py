#!/usr/bin/env python3
"""End-to-end smoke of the campaign service (docs/SERVE.md).

Drives a real ``repro serve`` subprocess over HTTP and proves the three
properties the service advertises:

* **Scenario A — fresh campaign.**  Submit a sweep over HTTP
  (``jobs=2``), stream it to completion, verify every streamed record's
  journal-v2 checksum, and check the aggregated points are byte-identical
  (canonical JSON) to an in-process serial ``sweep()`` reference.
* **Scenario B — cached resubmission.**  Submit the identical spec again
  and require 100% cache hits: zero dispatched trials, zero dispatched
  pool chunks, and a byte-identical result.
* **Scenario C — worker murder.**  Submit a fresh campaign and ``kill
  -9`` a pool worker mid-stream; the supervised pool must rebuild,
  the stream must complete, and the result must still be byte-identical
  to the serial reference.

Exits 0 when every check passes, 1 otherwise.  Linux-only (worker
discovery walks /proc).
"""

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis.sweeps import sweep  # noqa: E402
from repro.exec import default_serialize  # noqa: E402
from repro.exec.journal import CRC_KEY, SEQ_KEY, record_crc  # noqa: E402
from repro.parallel.tasks import election_trial  # noqa: E402


def log(message):
    print(f"[serve-smoke] {message}", file=sys.stderr, flush=True)


def fail(message):
    log(f"FAIL: {message}")
    return False


def canonical(payload):
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def serial_reference(grid, trials, master_seed):
    rows = sweep(election_trial, grid, trials=trials, master_seed=master_seed)
    return [
        {
            "point": point,
            "results": [default_serialize(value) for value in results],
            "failed": 0,
        }
        for point, results in rows
    ]


def post_json(base, path, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=60) as resp:
        return json.load(resp)


def get_json(base, path):
    with urllib.request.urlopen(base + path, timeout=60) as resp:
        return json.load(resp)


def stream_records(base, path, timeout):
    with urllib.request.urlopen(base + path, timeout=timeout) as resp:
        return [json.loads(line) for line in resp.read().decode().splitlines()]


def verify_seals(records):
    """Every streamed record must carry a valid journal-v2 envelope."""
    for expected_seq, sealed in enumerate(records):
        if sealed.get(SEQ_KEY) != expected_seq:
            return fail(
                f"stream sequence gap: got {sealed.get(SEQ_KEY)}, "
                f"expected {expected_seq}"
            )
        payload = {k: v for k, v in sealed.items() if k not in (CRC_KEY, SEQ_KEY)}
        if sealed.get(CRC_KEY) != record_crc(payload):
            return fail(f"stream record {expected_seq} fails its checksum")
    return True


def worker_pids(parent_pid):
    """Pool-worker children of ``parent_pid`` (resource tracker excluded).

    The serve process forks its pool from a background thread, so the
    children hang off that thread's task id — scan every task, not just
    the main one.
    """
    pids = []
    for children_path in Path(f"/proc/{parent_pid}/task").glob("*/children"):
        try:
            pids.extend(int(p) for p in children_path.read_text().split())
        except (OSError, ValueError):
            continue
    workers = []
    for pid in pids:
        try:
            cmdline = Path(f"/proc/{pid}/cmdline").read_bytes()
        except OSError:
            continue
        if b"resource_tracker" not in cmdline and b"semaphore_tracker" not in cmdline:
            workers.append(pid)
    return workers


def start_server(args, workdir):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    env["PYTHONHASHSEED"] = "0"
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--cache-dir",
            str(workdir / "cache"),
        ],
        env=env,
        stdout=subprocess.PIPE,
        text=True,
        cwd=ROOT,
    )
    line = proc.stdout.readline()
    match = re.search(r"http://[^:]+:(\d+)", line)
    if not match:
        proc.kill()
        raise RuntimeError(f"serve did not announce a port: {line!r}")
    port = int(match.group(1))
    log(f"serve pid {proc.pid} listening on port {port}")
    return proc, f"http://127.0.0.1:{port}"


def scenario_fresh(base, spec, reference, timeout):
    """Scenario A: fresh campaign over HTTP, jobs=2, vs serial reference."""
    submitted = post_json(base, "/campaigns", spec)
    log(f"scenario A: submitted {submitted['job']}")
    records = stream_records(base, submitted["stream_url"], timeout)
    if not verify_seals(records):
        return False, None
    summary = records[-1]
    if summary.get("kind") != "summary":
        return fail("scenario A: stream did not end with a summary"), None
    if summary["failed"]:
        return fail(f"scenario A: {summary['failed']} trial(s) failed"), None
    if summary["dispatched_chunks"] < 1:
        return fail("scenario A: a jobs=2 campaign dispatched no chunks"), None
    if canonical(summary["points"]) != canonical(reference):
        return fail("scenario A: points differ from the serial reference"), None
    log(
        f"scenario A: {summary['total_trials']} trials, "
        f"{summary['dispatched_chunks']} chunks, byte-identical to serial"
    )
    return True, summary


def scenario_cached(base, spec, fresh_summary, timeout):
    """Scenario B: identical resubmission must be 100% cache, 0 dispatches."""
    submitted = post_json(base, "/campaigns", spec)
    log(f"scenario B: resubmitted as {submitted['job']}")
    records = stream_records(base, submitted["stream_url"], timeout)
    if not verify_seals(records):
        return False
    summary = records[-1]
    total = summary["total_trials"]
    ok = True
    if summary["cache_hits"] != total:
        ok = fail(
            f"scenario B: {summary['cache_hits']}/{total} cache hits, "
            "expected all"
        )
    if summary["dispatched_trials"] != 0 or summary["dispatched_chunks"] != 0:
        ok = fail(
            "scenario B: cached resubmission touched the pool "
            f"(trials={summary['dispatched_trials']}, "
            f"chunks={summary['dispatched_chunks']})"
        )
    statuses = {r["status"] for r in records if "status" in r}
    if statuses != {"cached"}:
        ok = fail(f"scenario B: unexpected trial statuses {sorted(statuses)}")
    if canonical(summary["points"]) != canonical(fresh_summary["points"]):
        ok = fail("scenario B: cached points differ from the fresh run")
    if ok:
        log(f"scenario B: all {total} trials served from cache, zero dispatches")
    return ok


def scenario_worker_murder(base, spec, reference, serve_pid, timeout):
    """Scenario C: kill -9 a pool worker mid-campaign; result unchanged."""
    killed = []
    stop = threading.Event()

    def killer():
        deadline = time.monotonic() + timeout
        while not stop.is_set() and time.monotonic() < deadline:
            for pid in worker_pids(serve_pid):
                if pid not in killed:
                    try:
                        os.kill(pid, signal.SIGKILL)
                    except OSError:
                        continue
                    killed.append(pid)
                    log(f"scenario C: killed worker {pid}")
                    return
            time.sleep(0.05)

    submitted = post_json(base, "/campaigns", spec)
    log(f"scenario C: submitted {submitted['job']}")
    thread = threading.Thread(target=killer, daemon=True)
    thread.start()
    records = stream_records(base, submitted["stream_url"], timeout)
    stop.set()
    thread.join(timeout=5)

    if not verify_seals(records):
        return False
    summary = records[-1]
    ok = True
    if not killed:
        ok = fail("scenario C: no worker was killed — campaign too short")
    if summary.get("kind") != "summary":
        ok = fail("scenario C: stream did not end with a summary")
    elif summary["failed"]:
        ok = fail(f"scenario C: {summary['failed']} trial(s) failed")
    elif canonical(summary["points"]) != canonical(reference):
        ok = fail("scenario C: points differ from the serial reference")
    if ok:
        log(
            "scenario C: campaign survived the murder, "
            "result byte-identical to serial"
        )
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", default="96,128", help="sweep n axis")
    parser.add_argument("--trials", type=int, default=6, help="trials per point")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workdir", default="serve-smoke-work")
    parser.add_argument("--timeout", type=float, default=600.0)
    args = parser.parse_args()

    if not sys.platform.startswith("linux"):
        log("SKIP: worker discovery requires /proc (Linux)")
        return 0

    workdir = Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    grid = {"n": [int(n) for n in args.n.split(",")], "alpha": [0.5]}
    spec = {
        "task": "election",
        "grid": grid,
        "trials": args.trials,
        "master_seed": args.seed,
        "jobs": 2,
    }

    log(f"serial reference: {args.n} x {args.trials} trials")
    reference = serial_reference(grid, args.trials, args.seed)
    murder_seed = args.seed + 1
    murder_reference = serial_reference(grid, args.trials, murder_seed)

    proc, base = start_server(args, workdir)
    try:
        health = get_json(base, "/health")
        log(f"health: {health}")
        ok_a, fresh_summary = scenario_fresh(base, spec, reference, args.timeout)
        ok_b = bool(ok_a) and scenario_cached(
            base, spec, fresh_summary, args.timeout
        )
        murder_spec = dict(spec, master_seed=murder_seed)
        ok_c = scenario_worker_murder(
            base, murder_spec, murder_reference, proc.pid, args.timeout
        )
        cache_stats = get_json(base, "/cache")
        log(f"cache stats: {cache_stats}")
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()

    if ok_a and ok_b and ok_c:
        log("all scenarios passed")
        return 0
    log("serve smoke FAILED")
    return 1


if __name__ == "__main__":
    sys.exit(main())
