#!/usr/bin/env python3
"""Chaos harness for the supervision layer (docs/RESILIENCE.md).

Proves, end to end and against the real CLI, that a supervised campaign
survives the failure modes it advertises:

* **Scenario A — worker murder.**  Run ``repro sweep --jobs 2`` and
  ``kill -9`` at least two of its pool workers mid-sweep.  The campaign
  must finish on its own, its ``--out`` aggregates must be
  byte-identical (canonical JSON) to an untouched ``--jobs 1`` reference
  run, and ``repro report`` must show the pool rebuilds.
* **Scenario B — parent murder + resume.**  Run a second campaign,
  SIGTERM the *parent* mid-sweep (expect exit 130), then rerun with
  ``--resume``.  The resumed aggregates must again be byte-identical to
  the serial reference.
* **Journal audit.**  ``repro journal fsck`` must report every journal
  clean; the combined fsck reports are written to ``--fsck-out`` for CI
  artifact upload.

Exits 0 when every check passes, 1 otherwise.  Linux-only (worker
discovery walks /proc).
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]


def log(message):
    print(f"[chaos-harness] {message}", file=sys.stderr, flush=True)


def repro_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    env["PYTHONHASHSEED"] = "0"
    return env


def sweep_argv(args, journal, out, jobs, resume=False):
    argv = [
        sys.executable,
        "-m",
        "repro",
        "sweep",
        "--task",
        "election",
        "--n",
        args.n,
        "--alpha",
        "0.5",
        "--trials",
        str(args.trials),
        "--seed",
        str(args.seed),
        "--jobs",
        str(jobs),
        "--journal",
        str(journal),
        "--out",
        str(out),
    ]
    if resume:
        argv.append("--resume")
    return argv


def canonical_out(path):
    """The --out payload in canonical bytes (key order normalised)."""
    with open(path) as handle:
        return json.dumps(json.load(handle), sort_keys=True).encode()


def worker_pids(parent_pid):
    """Pool-worker children of ``parent_pid`` (resource tracker excluded)."""
    children_path = Path(f"/proc/{parent_pid}/task/{parent_pid}/children")
    try:
        pids = [int(p) for p in children_path.read_text().split()]
    except (OSError, ValueError):
        return []
    workers = []
    for pid in pids:
        try:
            cmdline = Path(f"/proc/{pid}/cmdline").read_bytes()
        except OSError:
            continue
        if b"resource_tracker" not in cmdline and b"semaphore_tracker" not in cmdline:
            workers.append(pid)
    return workers


def journal_lines(path):
    try:
        return Path(path).read_bytes().count(b"\n")
    except OSError:
        return 0


def run_reference(args, workdir):
    out = workdir / "reference.json"
    log(f"reference run (jobs=1): {args.n} x {args.trials} trials")
    result = subprocess.run(
        sweep_argv(args, workdir / "reference.jsonl", out, jobs=1),
        env=repro_env(),
        stdout=subprocess.DEVNULL,
        cwd=ROOT,
    )
    log(f"reference run finished with exit code {result.returncode}")
    return out, result.returncode


def scenario_worker_murder(args, workdir, reference):
    """Scenario A: kill -9 pool workers; campaign must still finish."""
    journal = workdir / "workers.jsonl"
    out = workdir / "workers.json"
    proc = subprocess.Popen(
        sweep_argv(args, journal, out, jobs=2),
        env=repro_env(),
        stdout=subprocess.DEVNULL,
        cwd=ROOT,
    )
    killed = []
    deadline = time.monotonic() + args.scenario_timeout
    while proc.poll() is None and time.monotonic() < deadline:
        if len(killed) >= args.kills:
            time.sleep(0.2)
            continue
        # Let the campaign make some progress between murders.
        if journal_lines(journal) < 2 + len(killed) * 2:
            time.sleep(0.1)
            continue
        for pid in worker_pids(proc.pid):
            if pid not in killed:
                os.kill(pid, signal.SIGKILL)
                killed.append(pid)
                log(f"killed worker {pid} (kill {len(killed)}/{args.kills})")
                break
        time.sleep(0.3)
    try:
        returncode = proc.wait(timeout=args.scenario_timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        return fail("scenario A: supervised sweep never finished")

    ok = True
    if len(killed) < args.kills:
        ok = fail(
            f"scenario A: only {len(killed)}/{args.kills} workers killed "
            "— campaign too short, raise --trials"
        )
    reference_out, reference_rc = reference
    if returncode != reference_rc:
        ok = fail(
            f"scenario A: exit code {returncode} != reference {reference_rc}"
        )
    elif canonical_out(out) != canonical_out(reference_out):
        ok = fail("scenario A: aggregates differ from the serial reference")
    else:
        log("scenario A: aggregates byte-identical to the serial reference")

    report = subprocess.run(
        [sys.executable, "-m", "repro", "report", str(journal)],
        env=repro_env(),
        capture_output=True,
        text=True,
        cwd=ROOT,
    )
    if "pool rebuilds" not in report.stdout:
        ok = fail("scenario A: `repro report` shows no supervision section")
    else:
        supervision = [
            line.strip()
            for line in report.stdout.splitlines()
            if "rebuild" in line or "redispatched" in line or "deaths" in line
        ]
        log("scenario A report: " + "; ".join(supervision))
    return ok, journal


def scenario_parent_murder(args, workdir, reference):
    """Scenario B: SIGTERM the parent, then --resume to completion."""
    journal = workdir / "parent.jsonl"
    out = workdir / "parent.json"
    proc = subprocess.Popen(
        sweep_argv(args, journal, out, jobs=2),
        env=repro_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
        cwd=ROOT,
    )
    deadline = time.monotonic() + args.scenario_timeout
    while proc.poll() is None and time.monotonic() < deadline:
        if journal_lines(journal) >= 3:
            break
        time.sleep(0.05)
    interrupted = proc.poll() is None
    if interrupted:
        proc.send_signal(signal.SIGTERM)
        log(f"sent SIGTERM to parent {proc.pid}")
    _, stderr = proc.communicate(timeout=args.scenario_timeout)

    ok = True
    if interrupted:
        if proc.returncode != 130:
            ok = fail(
                f"scenario B: interrupted parent exited {proc.returncode},"
                " expected 130"
            )
        if "--resume" not in stderr:
            ok = fail("scenario B: interrupt message does not advertise --resume")
        log("parent exited 130; resuming the campaign")
        resumed = subprocess.run(
            sweep_argv(args, journal, out, jobs=2, resume=True),
            env=repro_env(),
            stdout=subprocess.DEVNULL,
            cwd=ROOT,
            timeout=args.scenario_timeout,
        )
        returncode = resumed.returncode
    else:
        ok = fail("scenario B: campaign finished before SIGTERM — raise --trials")
        returncode = proc.returncode

    reference_out, reference_rc = reference
    if returncode != reference_rc:
        ok = fail(
            f"scenario B: exit code {returncode} != reference {reference_rc}"
        )
    elif canonical_out(out) != canonical_out(reference_out):
        ok = fail("scenario B: resumed aggregates differ from the reference")
    else:
        log("scenario B: resumed aggregates byte-identical to the reference")
    return ok, journal


def fsck_all(journals, fsck_out):
    reports = []
    ok = True
    for journal in journals:
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "journal",
                "fsck",
                str(journal),
                "--format",
                "json",
            ],
            env=repro_env(),
            capture_output=True,
            text=True,
            cwd=ROOT,
        )
        try:
            report = json.loads(result.stdout)
        except json.JSONDecodeError:
            ok = fail(f"fsck produced no JSON for {journal}: {result.stderr}")
            continue
        reports.append(report)
        if not report.get("clean"):
            ok = fail(f"fsck: {journal} is not clean: {report}")
        else:
            log(
                f"fsck clean: {Path(journal).name}"
                f" ({report['verified']} verified records)"
            )
    Path(fsck_out).write_text(json.dumps(reports, indent=2, sort_keys=True))
    log(f"wrote fsck reports to {fsck_out}")
    return ok


def fail(message):
    log(f"FAIL: {message}")
    return False


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", default="96,128", help="sweep n axis")
    parser.add_argument("--trials", type=int, default=10, help="trials per point")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--kills", type=int, default=2, help="workers to kill -9")
    parser.add_argument("--workdir", default="chaos-harness-work")
    parser.add_argument("--fsck-out", default="chaos-fsck.json")
    parser.add_argument("--scenario-timeout", type=float, default=600.0)
    args = parser.parse_args()

    if not sys.platform.startswith("linux"):
        log("SKIP: worker discovery requires /proc (Linux)")
        return 0

    workdir = Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    reference = run_reference(args, workdir)
    ok_a, journal_a = scenario_worker_murder(args, workdir, reference)
    ok_b, journal_b = scenario_parent_murder(args, workdir, reference)
    ok_fsck = fsck_all(
        [workdir / "reference.jsonl", journal_a, journal_b], args.fsck_out
    )

    if ok_a and ok_b and ok_fsck:
        log("all scenarios passed")
        return 0
    log("chaos harness FAILED")
    return 1


if __name__ == "__main__":
    sys.exit(main())
