#!/usr/bin/env python3
"""End-to-end smoke of the real-network backend (docs/NET.md).

Drives real node processes over localhost TCP and proves the three
properties the wire backend advertises:

* **Scenario A — parity oracle via the CLI.**  ``repro wire parity``
  over election at n=8, fault-free *and* scripted-SIGKILL cells, on the
  real wire backend: metrics and outcomes must equal the simulator's
  exactly, and the oracle's JSON report must say so.
* **Scenario B — scripted SIGKILLs are real.**  An agreement trial
  whose CrashScript kills two node processes mid-run with partial
  final-round delivery; the crash accounting must line up with the
  script and the coordinator journal must record the kills.
* **Scenario C — unscripted murder fails fast, not hung.**  SIGKILL a
  node the model did *not* schedule; the heartbeat detector must turn
  that into a journalled failed trial naming the victim, well inside
  the trial timeout.

Exits 0 when every check passes, 1 otherwise.  Journals for all three
scenarios land under ``--workdir`` so CI can upload them on failure.
"""

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.net import WireSpec, default_script, run_wire_trial  # noqa: E402

#: Fast transport settings: 50 ms beats, generous bound for CI jitter.
FAST = dict(heartbeat_interval=0.05, suspicion_threshold=40, trial_timeout=120.0)


def log(message):
    print(f"[wire-smoke] {message}", file=sys.stderr, flush=True)


def fail(message):
    log(f"FAIL: {message}")
    return False


def scenario_parity_cli(workdir):
    log("scenario A: repro wire parity (election n=8, wire backend)")
    out = workdir / "parity.json"
    journal = workdir / "parity-journals"
    started = time.monotonic()
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "wire", "parity",
            "--protocols", "election", "--sizes", "8",
            "--backend", "wire",
            "--heartbeat-interval", "0.05", "--suspicion-threshold", "40",
            "--journal-dir", str(journal), "--out", str(out),
        ],
        cwd=ROOT,
        env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
        capture_output=True,
        text=True,
        timeout=300,
    )
    log(f"parity CLI exited {proc.returncode} in {time.monotonic() - started:.1f}s")
    if proc.returncode != 0:
        log(proc.stdout)
        log(proc.stderr)
        return fail("wire parity CLI exited non-zero")
    if "parity: 2/2 cells match" not in proc.stdout:
        log(proc.stdout)
        return fail("expected 2/2 parity cells to match")
    reports = json.loads(out.read_text())
    for report in reports:
        if not report["ok"] or report["diffs"]:
            return fail(f"parity report not clean: {report['diffs']}")
        if report["wire_metrics"] != report["sim_metrics"]:
            return fail("wire metrics != sim metrics in the JSON report")
    log("parity oracle green: wire == sim, fault-free and scripted")
    return True


def scenario_scripted_sigkill(workdir):
    log("scenario B: scripted SIGKILLs during a real agreement trial")
    spec = WireSpec(protocol="agreement", n=8, seed=0, **FAST)
    spec = spec.with_(script=default_script(spec))
    journal = workdir / "scripted"
    trial = run_wire_trial(spec, journal_dir=str(journal))
    if not trial.ok:
        return fail(f"scripted trial failed: {trial.reason}")
    expected = {node: round_ for node, (round_, _) in spec.script.crashes.items()}
    if trial.crashed != expected:
        return fail(f"crash accounting {trial.crashed} != script {expected}")
    events = [
        json.loads(line)
        for line in (journal / "coordinator.jsonl").read_text().splitlines()
    ]
    killed = {e["node"] for e in events if e["event"] == "crash"}
    if killed != set(expected):
        return fail(f"journal records kills of {killed}, script says {set(expected)}")
    log(f"killed {sorted(killed)} on schedule; accounting and journal agree")
    return True


def scenario_unscripted_kill(workdir):
    log("scenario C: unscripted SIGKILL must fail fast via the detector")
    spec = WireSpec(
        protocol="election", n=8, seed=0,
        heartbeat_interval=0.05, suspicion_threshold=6, round_timeout=10.0,
    )
    journal = workdir / "unscripted"
    started = time.monotonic()
    trial = run_wire_trial(spec, journal_dir=str(journal), kill_after=(3, 2))
    elapsed = time.monotonic() - started
    if trial.ok:
        return fail("trial succeeded despite an unscripted node death")
    if "heartbeat detector suspects node(s) [3]" not in trial.reason:
        return fail(f"unexpected failure reason: {trial.reason}")
    if elapsed > spec.trial_timeout / 4:
        return fail(f"detection took {elapsed:.1f}s — that is a hang, not detection")
    result = json.loads((journal / "result.json").read_text())
    if result["ok"] or "suspects" not in result["reason"]:
        return fail("failed trial not journalled with its reason")
    log(f"detector failed the trial in {elapsed:.1f}s: {trial.reason}")
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", default="wire-smoke-work")
    args = parser.parse_args()
    workdir = Path(args.workdir).resolve()
    workdir.mkdir(parents=True, exist_ok=True)

    ok = True
    ok = scenario_parity_cli(workdir) and ok
    ok = scenario_scripted_sigkill(workdir) and ok
    ok = scenario_unscripted_kill(workdir) and ok
    log("all scenarios green" if ok else "one or more scenarios FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
